"""Tests for the assembler, branch relaxation, and the text parser."""

import pytest

from repro.isa.asmparse import ParseError, parse_asm
from repro.isa.image import Assembler, AssemblyError
from repro.isa.instructions import Imm, Instruction, Label, Mem, Reg
from repro.isa.registers import Reg8


class TestAssembler:
    def test_label_resolution(self):
        asm = Assembler(code_base=0x1000)
        asm.label("start", function=True)
        asm.emit(Instruction("jmp", (Label("end"),)))
        asm.emit(Instruction("nop"))
        asm.label("end")
        asm.emit(Instruction("ret"))
        image = asm.assemble()
        assert image.symbol("start") == 0x1000
        jmp = image.decode_at(0x1000)
        assert jmp.mnemonic == "jmp"
        assert jmp.operands == (image.symbol("end"),)

    def test_short_branch_selected_when_close(self):
        asm = Assembler(code_base=0x1000)
        asm.emit(Instruction("jne", (Label("target"),)))
        asm.emit(Instruction("nop"))
        asm.label("target")
        asm.emit(Instruction("ret"))
        image = asm.assemble()
        assert image.decode_at(0x1000).encoded_size == 2

    def test_branch_relaxation_promotes_to_long(self):
        asm = Assembler(code_base=0x1000)
        asm.emit(Instruction("jne", (Label("target"),)))
        for _ in range(200):
            asm.emit(Instruction("nop"))
        asm.label("target")
        asm.emit(Instruction("ret"))
        image = asm.assemble()
        jne = image.decode_at(0x1000)
        assert jne.encoded_size == 5
        assert jne.operands == (image.symbol("target"),)

    def test_align_pads_with_nops(self):
        asm = Assembler(code_base=0x1000)
        asm.emit(Instruction("ret"))
        asm.align(16)
        asm.label("aligned", function=True)
        asm.emit(Instruction("ret"))
        image = asm.assemble()
        assert image.symbol("aligned") == 0x1010
        assert image.decode_at(0x1001).mnemonic == "nop"

    def test_data_section_symbols(self):
        asm = Assembler(code_base=0x1000, data_base=0x8000)
        asm.emit(Instruction("ret"))
        asm.section("data")
        asm.label("table")
        asm.data((123).to_bytes(4, "little"))
        image = asm.assemble()
        assert image.symbol("table") == 0x8000
        assert int.from_bytes(image.read(0x8000, 4), "little") == 123

    def test_symbol_as_immediate(self):
        asm = Assembler(code_base=0x1000, data_base=0x8000)
        asm.emit(Instruction("mov", (Reg(0), Label("table"))))
        asm.emit(Instruction("ret"))
        asm.section("data")
        asm.label("table")
        asm.data(b"\x00" * 4)
        image = asm.assemble()
        mov = image.decode_at(0x1000)
        assert mov.operands[1] == Imm(0x8000)

    def test_symbolic_mem_displacement(self):
        asm = Assembler(code_base=0x1000, data_base=0x8000)
        asm.emit(Instruction("mov", (Reg(0), Mem(index=1, scale=4, disp_label="table"))))
        asm.emit(Instruction("ret"))
        asm.section("data")
        asm.label("table")
        asm.data(b"\x00" * 28)
        image = asm.assemble()
        mov = image.decode_at(0x1000)
        assert mov.operands[1].disp == 0x8000
        assert mov.operands[1].index == 1

    def test_undefined_label_raises(self):
        asm = Assembler()
        asm.emit(Instruction("jmp", (Label("nowhere"),)))
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("twice")
        asm.label("twice")
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_function_spans(self):
        asm = Assembler(code_base=0x1000)
        asm.label("first", function=True)
        asm.emit(Instruction("ret"))
        asm.label("second", function=True)
        asm.emit(Instruction("nop"))
        asm.emit(Instruction("ret"))
        image = asm.assemble()
        start, end = image.functions["first"]
        assert (start, end) == (0x1000, 0x1001)
        start, end = image.functions["second"]
        assert start == 0x1001 and end == 0x1003

    def test_disassemble_function(self):
        asm = Assembler(code_base=0x1000)
        asm.label("f", function=True)
        asm.emit(Instruction("mov", (Reg(0), Reg(1))))
        asm.emit(Instruction("ret"))
        image = asm.assemble()
        listing = image.disassemble_function("f")
        assert [i.mnemonic for i in listing] == ["mov", "ret"]

    def test_read_outside_image(self):
        image = Assembler().assemble()
        with pytest.raises(AssemblyError):
            image.read(0xDEAD0000, 4)


class TestParser:
    def test_basic_program(self):
        image = parse_asm(
            """
            .text
            main:
                mov eax, 42
                ret
            """,
            code_base=0x1000,
        ).assemble()
        mov = image.decode_at(0x1000)
        assert mov.mnemonic == "mov"
        assert mov.operands == (Reg(0), Imm(42))

    def test_memory_operands(self):
        image = parse_asm(
            """
            .text
            f:
                mov eax, [ebp+8]
                mov ebx, [esi+edi*4-0x10]
                movzx ecx, byte [esi]
                ret
            """,
            code_base=0x1000,
        ).assemble()
        listing = image.disassemble_function("f")
        assert listing[0].operands[1] == Mem(base=5, disp=8)
        assert listing[1].operands[1] == Mem(base=6, index=7, scale=4,
                                             disp=(-0x10) & 0xFFFFFFFF)
        assert listing[2].operands[1] == Mem(base=6, size=1)

    def test_local_labels_are_function_scoped(self):
        image = parse_asm(
            """
            .text
            f:
                jmp .done
            .done:
                ret
            g:
                jmp .done
            .done:
                ret
            """,
            code_base=0x1000,
        ).assemble()
        f_jmp = image.disassemble_function("f")[0]
        g_jmp = image.disassemble_function("g")[0]
        assert f_jmp.operands[0] < g_jmp.operands[0]

    def test_data_directives(self):
        image = parse_asm(
            """
            .data
            .align 64
            table: .word 1, 2, 3
            blob: .byte 0xAA, 0xBB
            buf: .space 8
            """,
        ).assemble()
        table = image.symbol("table")
        assert table % 64 == 0
        assert int.from_bytes(image.read(table + 4, 4), "little") == 2
        assert image.read(image.symbol("blob"), 2) == b"\xaa\xbb"

    def test_symbolic_displacement(self):
        image = parse_asm(
            """
            .text
            f:
                mov eax, [table+ecx*4]
                ret
            .data
            table: .word 7, 8, 9
            """,
        ).assemble()
        mov = image.disassemble_function("f")[0]
        assert mov.operands[1].disp == image.symbol("table")

    def test_byte_register_operands(self):
        image = parse_asm(
            """
            .text
            f:
                sete al
                shl eax, 4
                shr ebx, cl
                ret
            """,
            code_base=0x1000,
        ).assemble()
        listing = image.disassemble_function("f")
        assert listing[0].operands == (Reg8(0),)
        assert listing[2].operands == (Reg(3), Reg8(1))

    def test_comments_ignored(self):
        image = parse_asm(
            """
            .text
            ; full line comment
            f:
                nop  ; trailing comment
                ret  # hash comment
            """,
            code_base=0x1000,
        ).assemble()
        assert [i.mnemonic for i in image.disassemble_function("f")] == ["nop", "ret"]

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_asm(".text\nf:\n  mov eax, [esp+esp+esp]\n")

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            parse_asm(".bogus 12\n")
