"""Codec tests: encode/decode round-trips, including a property test that
pins the binary format for every instruction form."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.codec import DecodeError, EncodeError, OPCODE_TABLE, decode, encode
from repro.isa.instructions import Imm, Instruction, Mem, Reg
from repro.isa.registers import Reg8


def roundtrip(instr: Instruction, addr: int = 0x1000) -> Instruction:
    encoded = encode(instr, addr)
    decoded = decode(encoded, 0, addr)
    assert decoded.encoded_size == len(encoded)
    return decoded


class TestBasicEncodings:
    def test_mov_reg_reg(self):
        instr = Instruction("mov", (Reg(0), Reg(3)))
        decoded = roundtrip(instr)
        assert decoded.mnemonic == "mov"
        assert decoded.operands == (Reg(0), Reg(3))
        assert decoded.encoded_size == 2

    def test_mov_reg_imm8_is_compact(self):
        instr = Instruction("mov", (Reg(1), Imm(5)))
        assert len(encode(instr)) == 3

    def test_mov_reg_imm32(self):
        instr = Instruction("mov", (Reg(1), Imm(0x08048000)))
        decoded = roundtrip(instr)
        assert decoded.operands[1] == Imm(0x08048000)
        assert decoded.encoded_size == 6

    def test_imm8_sign_extension(self):
        instr = Instruction("add", (Reg(2), Imm(0xFFFFFFFF)))  # -1
        decoded = roundtrip(instr)
        assert decoded.operands[1] == Imm(0xFFFFFFFF)
        assert decoded.encoded_size == 3  # used the short form

    def test_mem_operand_full(self):
        mem = Mem(base=5, index=6, scale=8, disp=0x1234, size=4)
        decoded = roundtrip(Instruction("mov", (Reg(0), mem)))
        assert decoded.operands[1] == mem

    def test_mem_disp8(self):
        mem = Mem(base=5, disp=(-8) & 0xFFFFFFFF)
        decoded = roundtrip(Instruction("mov", (Reg(0), mem)))
        assert decoded.operands[1] == mem

    def test_byte_mem(self):
        mem = Mem(base=6, index=7, scale=1, disp=0, size=1)
        decoded = roundtrip(Instruction("movzx", (Reg(0), mem)))
        assert decoded.operands[1].size == 1

    def test_store_forms(self):
        mem = Mem(base=5, disp=8)
        decoded = roundtrip(Instruction("mov", (mem, Reg(2))))
        assert decoded.operands == (mem, Reg(2))
        decoded = roundtrip(Instruction("mov", (mem, Imm(7))))
        assert decoded.operands == (mem, Imm(7))

    def test_movb_store(self):
        mem = Mem(base=6, disp=3, size=1)
        decoded = roundtrip(Instruction("movb", (mem, Reg8(0))))
        assert decoded.operands == (mem, Reg8(0))

    def test_setcc(self):
        decoded = roundtrip(Instruction("sete", (Reg8(0),)))
        assert decoded.mnemonic == "sete"
        assert decoded.operands == (Reg8(0),)

    def test_shifts(self):
        decoded = roundtrip(Instruction("shl", (Reg(0), Imm(3))))
        assert decoded.operands == (Reg(0), Imm(3))
        decoded = roundtrip(Instruction("shr", (Reg(0), Reg8(1))))
        assert decoded.operands == (Reg(0), Reg8(1))

    def test_unary_forms(self):
        for mnemonic in ("inc", "dec", "neg", "not", "mul", "div"):
            decoded = roundtrip(Instruction(mnemonic, (Reg(3),)))
            assert decoded.mnemonic == mnemonic

    def test_push_pop(self):
        assert roundtrip(Instruction("push", (Reg(5),))).operands == (Reg(5),)
        assert roundtrip(Instruction("push", (Imm(0xDEAD),))).operands == (Imm(0xDEAD),)
        assert roundtrip(Instruction("pop", (Reg(5),))).operands == (Reg(5),)

    def test_no_operand_instructions(self):
        for mnemonic in ("ret", "nop", "hlt"):
            assert roundtrip(Instruction(mnemonic)).mnemonic == mnemonic
            assert len(encode(Instruction(mnemonic))) == 1

    def test_imul_forms(self):
        decoded = roundtrip(Instruction("imul", (Reg(0), Reg(1))))
        assert decoded.operands == (Reg(0), Reg(1))
        decoded = roundtrip(Instruction("imul", (Reg(0), Reg(1), Imm(384))))
        assert decoded.operands == (Reg(0), Reg(1), Imm(384))


class TestBranches:
    def test_short_forward_jump(self):
        instr = Instruction("jmp", (0x1010,))
        encoded = encode(instr, 0x1000)
        assert len(encoded) == 2
        assert decode(encoded, 0, 0x1000).operands == (0x1010,)

    def test_short_backward_jump(self):
        instr = Instruction("jne", (0x0FF0,))
        encoded = encode(instr, 0x1000)
        assert len(encoded) == 2
        assert decode(encoded, 0, 0x1000).operands == (0x0FF0,)

    def test_long_jump_auto_selected(self):
        instr = Instruction("jmp", (0x2000,))
        encoded = encode(instr, 0x1000)
        assert len(encoded) == 5
        assert decode(encoded, 0, 0x1000).operands == (0x2000,)

    def test_force_long(self):
        instr = Instruction("je", (0x1004,))
        encoded = encode(instr, 0x1000, force_long=True)
        assert len(encoded) == 5
        assert decode(encoded, 0, 0x1000).operands == (0x1004,)

    def test_call_is_always_rel32(self):
        instr = Instruction("call", (0x1100,))
        encoded = encode(instr, 0x1000)
        assert len(encoded) == 5
        assert decode(encoded, 0, 0x1000).operands == (0x1100,)

    def test_all_condition_codes_roundtrip(self):
        for mnemonic in [m for m, form in OPCODE_TABLE if m.startswith("j") and form == "rel32"]:
            instr = Instruction(mnemonic, (0x9000,))
            decoded = decode(encode(instr, 0x1000), 0, 0x1000)
            assert decoded.mnemonic == mnemonic
            assert decoded.operands == (0x9000,)


class TestErrors:
    def test_decode_invalid_opcode(self):
        with pytest.raises(DecodeError):
            decode(bytes([0xFF]), 0, 0)

    def test_decode_past_end(self):
        with pytest.raises(DecodeError):
            decode(b"", 0, 0)

    def test_unresolved_symbol_rejected(self):
        mem = Mem(base=0, disp_label="table")
        with pytest.raises(EncodeError):
            encode(Instruction("mov", (Reg(0), mem)))


# ----------------------------------------------------------------------
# Property: every encodable instruction round-trips
# ----------------------------------------------------------------------

regs = st.builds(Reg, st.integers(min_value=0, max_value=7))
regs8 = st.builds(Reg8, st.integers(min_value=0, max_value=3))
imms = st.builds(Imm, st.integers(min_value=0, max_value=0xFFFFFFFF))
@st.composite
def mems_strategy(draw):
    base = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=7)))
    index = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=7)))
    disp = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    if base is None and index is None and disp == 0:
        disp = 4
    return Mem(
        base=base, index=index,
        scale=draw(st.sampled_from([1, 2, 4, 8])),
        disp=disp,
        size=draw(st.sampled_from([1, 4])),
    )


mems = mems_strategy()


@st.composite
def encodable_instructions(draw):
    mnemonic, form = draw(st.sampled_from(OPCODE_TABLE))
    if form == "none":
        operands = ()
    elif form == "r":
        operands = (draw(regs),)
    elif form == "r8":
        operands = (draw(regs8),)
    elif form == "rr":
        operands = (draw(regs), draw(regs))
    elif form == "rb":
        operands = (draw(regs), draw(regs8))
    elif form == "rc":
        operands = (draw(regs), Reg8(1))
    elif form in ("ri8", "ri32"):
        if mnemonic in ("shl", "shr", "sar"):
            operands = (draw(regs), Imm(draw(st.integers(min_value=0, max_value=31))))
        else:
            operands = (draw(regs), draw(imms))
    elif form == "rri32":
        operands = (draw(regs), draw(regs), draw(imms))
    elif form in ("rm",):
        mem = draw(mems)
        if mnemonic == "movzx":
            mem = Mem(mem.base, mem.index, mem.scale, mem.disp, 1)
        operands = (draw(regs), mem)
    elif form == "mr":
        operands = (draw(mems), draw(regs))
    elif form == "mr8":
        operands = (draw(mems), draw(regs8))
    elif form in ("mi8", "mi32"):
        operands = (draw(mems), draw(imms))
    elif form == "m":
        operands = (draw(mems),)
    elif form == "i32":
        operands = (draw(imms),)
    elif form in ("rel8", "rel32"):
        operands = (draw(st.integers(min_value=0, max_value=0xFFFF)),)
    else:
        raise AssertionError(form)
    return Instruction(mnemonic, operands)


@settings(max_examples=500, deadline=None)
@given(instr=encodable_instructions(), addr=st.integers(min_value=0, max_value=0xFFFF))
def test_roundtrip_property(instr, addr):
    encoded = encode(instr, addr)
    decoded = decode(encoded, 0, addr)
    assert decoded.mnemonic == instr.mnemonic
    assert decoded.encoded_size == len(encoded)
    if not instr.mnemonic.startswith(("j", "call")):
        # Immediates may legally re-encode via the short form; compare values.
        assert decoded.operands == instr.operands
    else:
        assert decoded.operands == instr.operands
