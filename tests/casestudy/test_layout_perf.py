"""Tests for the layout renderers and the Figure 16 performance harness."""

import pytest

from repro.casestudy import targets
from repro.casestudy.layout import (
    render_bank_layout,
    render_code_blocks,
    render_plain_table_layout,
    render_scatter_gather_layout,
)
from repro.casestudy.performance import (
    PAPER_16A,
    PAPER_16B,
    figure16a,
    figure16b,
    format_figure16,
)
from repro.crypto.modexp import MODEXP_VARIANTS


class TestDataLayoutRenderers:
    def test_plain_table_layout_mentions_blocks(self):
        text = render_plain_table_layout(entries=2, entry_bytes=384)
        assert "p2" in text and "p3" in text
        assert text.count("0x") > 4  # block addresses rendered

    def test_plain_table_spans_six_blocks(self):
        text = render_plain_table_layout(entries=1, entry_bytes=384,
                                         block_bytes=64, base=0x080EB140)
        line = next(l for l in text.splitlines() if "p2" in l)
        # 384-byte value starting on a block boundary covers 6 blocks (Fig 1).
        assert line.count(",") == 5

    def test_scatter_gather_groups(self):
        text = render_scatter_gather_layout(values=8, groups=4)
        assert "p0[0]" in text and "p7[3]" in text

    def test_bank_layout_split(self):
        text = render_bank_layout()
        assert "bank  0" in text or "bank 0" in text
        # Figure 13: bank 0 holds p0..p3, bank 1 holds p4..p7.
        lines = text.splitlines()
        bank0 = next(l for l in lines if "bank  0" in l or "bank 0:" in l)
        assert "p0" in bank0 and "p3" in bank0 and "p4" not in bank0

    def test_code_rendering_marks_blocks(self):
        text = render_code_blocks(targets.sqam_target(opt_level=0, line_bytes=32))
        assert text.count("---- block") >= 2
        assert "-O0" in text


class TestFigure16Harness:
    def test_16b_kernel_measurements_positive(self):
        kernels = figure16b(nbytes=32)
        for name, measurement in kernels.items():
            assert measurement.instructions > 0, name
            assert measurement.cycles > 0, name
            assert measurement.memory_accesses > 0, name

    def test_16b_scaling_with_entry_size(self):
        small = figure16b(nbytes=16)
        large = figure16b(nbytes=64)
        for name in small:
            assert large[name].instructions > small[name].instructions

    def test_16b_ordering_matches_paper(self):
        kernels = figure16b(nbytes=64)
        assert (kernels["scatter_102f"].instructions
                < kernels["secure_163"].instructions
                < kernels["defensive_102g"].instructions)
        paper_order = sorted(PAPER_16B, key=lambda n: PAPER_16B[n]["instructions"])
        measured_order = sorted(kernels, key=lambda n: kernels[n].instructions)
        assert paper_order == measured_order

    def test_16a_covers_all_variants(self):
        measurements = figure16a(bits=128)
        assert set(measurements) == set(MODEXP_VARIANTS)
        for measurement in measurements.values():
            assert measurement.instructions > 0
            assert measurement.cycles > 0

    def test_16a_always_multiply_overhead(self):
        measurements = figure16a(bits=128)
        overhead = (measurements["sqam_153"].instructions
                    / measurements["sqm_152"].instructions)
        paper = (PAPER_16A["sqam_153"]["instructions"]
                 / PAPER_16A["sqm_152"]["instructions"])
        assert overhead == pytest.approx(paper, rel=0.10)

    def test_16a_formatting(self):
        text = format_figure16(figure16a(bits=128))
        assert "libgcrypt 1.5.2" in text
        assert "defensive gather" in text

    def test_16a_nonstandard_bits(self):
        measurements = figure16a(bits=96)  # pseudo-modulus path
        assert measurements["sqm_152"].instructions > 0
