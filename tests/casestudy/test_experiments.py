"""Integration tests: the paper's tables, regenerated and checked cell by
cell (small table geometry for speed; the benchmarks run the full sizes)."""

import pytest

from repro.casestudy import experiments, targets
from repro.casestudy.figure4 import figure4 as run_figure4
from repro.casestudy.layout import branch_block_summary
from repro.core.observers import AccessKind

I, D = AccessKind.INSTRUCTION, AccessKind.DATA


class TestFigure7:
    def test_figure7a_all_cells(self):
        result = experiments.figure7a()
        assert result.all_match, result.format()

    def test_figure7b_all_cells(self):
        result = experiments.figure7b()
        assert result.all_match, result.format()

    def test_figure7b_proves_dcache_silence(self):
        result = experiments.figure7b()
        assert result.analysis.report.is_non_interferent(D, "address")

    def test_countermeasure_closes_dcache_leak(self):
        """The paper's headline for §8.3: 1.5.2 leaks through the data
        cache, 1.5.3 does not."""
        vulnerable = experiments.figure7a()
        fixed = experiments.figure7b()
        assert vulnerable.cell("D-Cache", "address").measured_bits == 1.0
        assert fixed.cell("D-Cache", "address").measured_bits == 0.0


class TestFigure8:
    def test_figure8_all_cells(self):
        result = experiments.figure8()
        assert result.all_match, result.format()

    def test_optimization_level_changes_verdict(self):
        """Figures 7b vs 8: the same source is safe at -O2/64B and leaky at
        -O0/32B — the compilation-dependence the paper highlights."""
        safe = experiments.figure7b()
        leaky = experiments.figure8()
        assert safe.cell("I-Cache", "b-block").measured_bits == 0.0
        assert leaky.cell("I-Cache", "b-block").measured_bits == 1.0
        assert safe.cell("D-Cache", "address").measured_bits == 0.0
        assert leaky.cell("D-Cache", "address").measured_bits == 1.0


class TestFigure14:
    def test_figure14a_all_cells(self):
        result = experiments.figure14a()
        assert result.all_match, result.format()

    def test_figure14b_zero_leakage(self):
        result = experiments.figure14b(nlimbs=8)
        assert result.all_match, result.format()

    def test_figure14c_small_geometry(self):
        nbytes = 32
        result = experiments.figure14c(nbytes=nbytes)
        assert result.all_match, result.format()
        assert result.cell("D-Cache", "address").measured_bits == 3.0 * nbytes
        assert result.cell("D-Cache", "block").measured_bits == 0.0

    def test_figure14d_zero_leakage(self):
        result = experiments.figure14d(nbytes=16)
        assert result.all_match, result.format()

    def test_cachebleed_bank_leak(self):
        nbytes = 32
        measured, expected = experiments.cachebleed_bank_analysis(nbytes=nbytes)
        assert measured == expected == 1.0 * nbytes

    def test_scatter_half_is_block_safe(self):
        """Extension: the scatter (store) side collapses at block level too."""
        result = targets.scatter_target(nbytes=16).analyze()
        assert result.report.bits(D, "block") == 0.0
        assert result.report.bits(D, "address") == 3.0 * 16


class TestFigure15:
    def test_bblock_leak_depends_on_opt_level(self):
        effect = experiments.figure15_effect()
        assert effect[2] == 1.0  # -O2: out-of-line arm, A-B-A pattern
        assert effect[1] == 0.0  # -O1: both arms inline, leak eliminated

    def test_branch_block_summary_fig15(self):
        """Concrete runs confirm the caption: at -O2 some block is fetched
        only for some secrets; at -O1 the stuttering traces coincide."""
        o2 = branch_block_summary(targets.lookup_target(opt_level=2))
        o1 = branch_block_summary(targets.lookup_target(opt_level=1))
        assert o2.distinguishable
        assert not o1.distinguishable

    def test_o2_leak_is_order_based(self):
        """Figure 15a: the -O2 leak is the A-B-A fetch *order* (the cold arm
        returns to an already-fetched block), not an exclusive block."""
        summary = branch_block_summary(targets.lookup_target(opt_level=2))
        taken = summary.per_secret[0]
        fallthrough = summary.per_secret[1]
        assert set(taken) == set(fallthrough)  # same blocks...
        assert taken != fallthrough            # ...in a different order


class TestFigure9:
    def test_branch_blocks_sqam(self):
        """Figure 9: -O2/64B stuttering traces coincide; -O0/32B differ."""
        safe = branch_block_summary(targets.sqam_target(opt_level=2, line_bytes=64))
        leaky = branch_block_summary(targets.sqam_target(opt_level=0, line_bytes=32))
        assert not safe.distinguishable
        assert leaky.distinguishable

    def test_o0_leak_is_an_exclusive_block(self):
        """Figure 9b: at -O0 the taken arm owns a 32-byte block the
        fall-through never fetches."""
        summary = branch_block_summary(targets.sqam_target(opt_level=0, line_bytes=32))
        assert summary.blocks_exclusive_to(1)

    def test_formatting(self):
        summary = branch_block_summary(targets.sqam_target(opt_level=0, line_bytes=32))
        text = summary.format()
        assert "secret=0" in text and "secret=1" in text


class TestFigure4:
    def test_counts(self):
        result = run_figure4()
        assert result.address_count == 2
        assert result.block_count == 2
        assert result.block_stuttering_count == 1

    def test_dot_outputs(self):
        result = run_figure4()
        for dot in (result.address_dot, result.block_dot, result.block_stutter_dot):
            assert dot.startswith("digraph")


class TestValidationAgainstVM:
    """Theorem 1, executable, on the real case-study binaries."""

    @pytest.mark.parametrize("make_target,layouts", [
        (lambda: targets.sqm_target(), [
            {"rp": 0x9000000, "bp": 0x9010000, "mp": 0x9020000},
            {"rp": 0x9000040, "bp": 0x9011100, "mp": 0x9022220},
        ]),
        (lambda: targets.sqam_target(), [
            {"rp": 0x9000000, "tmp": 0x9008000, "bp": 0x9010000, "mp": 0x9020000},
        ]),
        (lambda: targets.sqam_target(opt_level=0, line_bytes=32), [
            {"rp": 0x9000000, "tmp": 0x9008000, "bp": 0x9010000, "mp": 0x9020000},
        ]),
        (lambda: targets.lookup_target(), [
            {"bp": 0x9000000, "bsize": 0x9000100},
        ]),
        (lambda: targets.gather_target(nbytes=16), [
            {"r": 0x9000000, "buf": 0x9010000},
            {"r": 0x9000004, "buf": 0x9010039},
        ]),
        (lambda: targets.defensive_gather_target(nbytes=8), [
            {"r": 0x9000000, "buf": 0x9010000},
        ]),
        (lambda: targets.secure_retrieve_target(nlimbs=4), [
            {"r": 0x9000000, "p": 0x9010000},
        ]),
    ])
    def test_bounds_dominate_concrete_views(self, make_target, layouts):
        from repro.analysis.validation import ConcreteValidator

        target = make_target()
        result = target.analyze()
        validator = ConcreteValidator(target.image, target.spec)
        outcome = validator.check(result, layouts)
        assert outcome.ok, outcome.violations
        assert outcome.checked > 0
