"""The AES T-table case study: the paper's flagship shape, executable.

Pins the three claims of the AES case study end to end:

1. **zero leakage when hardened**: preloaded-and-aligned AES reports bound
   1 (0 bits) for *every* observer and both derived adversaries, and the
   unhardened bounds strictly dominate it;
2. **misalignment leaks through the block observer**, and smaller lines
   degrade the aligned bound predictably;
3. **cache size**: on the VM, the preloaded round has exactly one timing
   class from the first capacity at which the tables fit — and the cold
   round leaks timing even when they fit.
"""

import pytest

from repro.analysis.validation import ConcreteValidator
from repro.casestudy import targets
from repro.casestudy.scenarios import (
    aes_scenario,
    aes_scenarios,
    all_scenarios,
    default_transforms,
)
from repro.sweep import SweepRunner


@pytest.fixture(scope="module")
def runner():
    return SweepRunner()


@pytest.fixture(scope="module")
def grid():
    return aes_scenarios()


class TestCatalogue:
    def test_grid_is_registered(self, grid):
        catalogue = all_scenarios()
        for name in grid:
            assert name in catalogue

    def test_flagship_points_exist(self, grid):
        for name in ("aes-O2-64B", "aes-O2-64B-aligned",
                     "aes-O2-64B-preload", "aes-O2-64B-preload-aligned",
                     "aes-O2-32B", "aes-timing-1KB", "aes-timing-2KB",
                     "aes-timing-2KB-cold", "aes-O2-64B-plru",
                     "aes-O2-64B-preload-aligned-fifo"):
            assert name in grid, name

    def test_entries_depart_from_default_in_the_name(self):
        assert aes_scenario(entries=64).name == "aes-O2-64B-64e"


class TestLeakageShape:
    def test_misaligned_tables_leak_through_the_block_observer(self, runner, grid):
        (base,) = runner.run([grid["aes-O2-64B"]])
        rows = {(row.kind, row.observer): row.count for row in base.rows}
        assert rows[("DATA", "block")] > 1
        assert rows[("DATA", "address")] > 1

    def test_alignment_closes_the_block_leak_but_not_the_rest(self, runner, grid):
        (aligned,) = runner.run([grid["aes-O2-64B-aligned"]])
        rows = {(row.kind, row.observer): row.count for row in aligned.rows}
        assert rows[("DATA", "block")] == 1   # every table fits one line
        assert rows[("DATA", "address")] > 1  # within-line offsets still leak
        assert rows[("DATA", "bank")] > 1

    def test_smaller_lines_degrade_the_aligned_bound(self, runner, grid):
        results = runner.run([grid["aes-O2-64B-aligned"],
                              grid["aes-O2-32B-aligned"]])
        by_line = [{(row.kind, row.observer): row.count for row in result.rows}
                   for result in results]
        assert by_line[1][("DATA", "block")] > by_line[0][("DATA", "block")]

    def test_preload_aligned_reaches_zero_leakage_everywhere(self, runner, grid):
        """The acceptance bar: bound 1 for all observers, strictly dominated
        by the unhardened variant, with the derived adversaries at 1 too."""
        base, hardened = runner.run(
            [grid["aes-O2-64B"], grid["aes-O2-64B-preload-aligned"]])
        hardened_rows = {(row.kind, row.observer): row.count
                         for row in hardened.rows}
        assert all(count == 1 for count in hardened_rows.values())
        assert all(row.count == 1 for row in hardened.adversary_rows)
        base_rows = {(row.kind, row.observer): row.count for row in base.rows}
        assert all(base_rows[key] >= count
                   for key, count in hardened_rows.items())
        assert any(base_rows[key] > count
                   for key, count in hardened_rows.items())

    def test_preload_alone_is_trace_silent_even_misaligned(self, runner, grid):
        (preloaded,) = runner.run([grid["aes-O2-64B-preload"]])
        rows = {(row.kind, row.observer): row.count for row in preloaded.rows}
        assert all(count == 1 for count in rows.values())

    def test_policy_axis_agrees_on_the_bounds(self, runner, grid):
        results = runner.run([grid["aes-O2-64B"], grid["aes-O2-64B-fifo"],
                              grid["aes-O2-64B-plru"]])
        tables = [{(row.kind, row.observer): row.count for row in result.rows}
                  for result in results]
        assert tables[0] == tables[1] == tables[2]


class TestTimingStudy:
    """The cache-size condition of the paper's preloading claim."""

    def test_preloaded_and_fitting_means_one_timing_class(self, runner, grid):
        (fits,) = runner.run([grid["aes-timing-2KB"]])
        assert fits.metrics["fits"] == 1
        assert fits.metrics["timing_classes"] == 1

    def test_just_fitting_capacity_still_suffices(self, runner, grid):
        (fits,) = runner.run([grid["aes-timing-1536B"]])
        assert fits.metrics["fits"] == 1
        assert fits.metrics["timing_classes"] == 1

    def test_too_small_a_cache_leaks_timing(self, runner, grid):
        (small,) = runner.run([grid["aes-timing-1KB"]])
        assert small.metrics["fits"] == 0
        assert small.metrics["timing_classes"] > 1

    def test_cold_tables_leak_timing_even_when_they_fit(self, runner, grid):
        (cold,) = runner.run([grid["aes-timing-2KB-cold"]])
        assert cold.metrics["fits"] == 1
        assert cold.metrics["timing_classes"] > 1


class TestSoundness:
    """Theorem 1, concretely, for the new workload."""

    def test_bounds_dominate_concrete_views(self):
        target = targets.aes_target()
        result = target.analyze()
        validator = ConcreteValidator(target.image, target.spec)
        outcome = validator.check(result, targets.default_layouts(target.name))
        assert outcome.ok, outcome.violations

    def test_adversary_bounds_hold_for_every_policy(self):
        target = targets.aes_target()
        result = target.analyze()
        validator = ConcreteValidator(target.image, target.spec)
        outcome = validator.check_adversaries(
            result, targets.default_layouts(target.name),
            policies=("lru", "fifo", "plru"))
        assert outcome.ok, outcome.violations

    def test_key_sample_is_spread_and_validated(self):
        assert targets.aes_key_sample(16) == (2, 6, 10, 14)
        assert targets.aes_key_sample(256) == (32, 96, 160, 224)
        with pytest.raises(ValueError, match="candidates"):
            targets.aes_key_sample(16, candidates=1)

    def test_hardened_transforms_key_the_fingerprint(self, grid):
        base = grid["aes-O2-64B"]
        hardened = grid["aes-O2-64B-preload-aligned"]
        assert base.fingerprint() != hardened.fingerprint()
        assert hardened.transforms == default_transforms(
            base, ("preload", "align-tables"))
