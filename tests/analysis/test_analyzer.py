"""End-to-end analyzer tests on hand-written binaries.

These tests exercise the full pipeline (assemble → decode → abstract
execution → trace DAG counting) on the paper's running examples, and
cross-validate every static bound against exhaustive concrete execution
(Theorem 1) via the :class:`ConcreteValidator`.
"""

import pytest

from repro.analysis.analyzer import analyze
from repro.analysis.config import AnalysisConfig, InputSpec, MemInit
from repro.analysis.validation import ConcreteValidator
from repro.core.observers import AccessKind
from repro.isa.asmparse import parse_asm
from repro.isa.registers import EAX, EBX, ESI

I, D = AccessKind.INSTRUCTION, AccessKind.DATA

CONFIG = AnalysisConfig(observer_names=("address", "bank", "block"))


def build(text):
    return parse_asm(text).assemble()


def assert_validated(image, spec, result, layouts):
    validator = ConcreteValidator(image, spec)
    outcome = validator.check(result, layouts)
    assert outcome.ok, outcome.violations


class TestStraightLine:
    def test_no_secrets_no_leak(self):
        image = build("""
        .text
        main:
            mov eax, 1
            add eax, 2
            mov ebx, 0x9000000
            mov [ebx], eax
            mov ecx, [ebx]
            ret
        """)
        spec = InputSpec(entry="main")
        result = analyze(image, spec, CONFIG)
        for kind in (I, D):
            for observer in ("address", "block", "bank"):
                assert result.report.bits(kind, observer) == 0.0

    def test_example_3_secret_dependent_pointer(self):
        """Paper Example 3: x := malloc(...); if h then x := x + 64."""
        image = build("""
        .text
        main:
            test eax, eax
            je .skip
            add esi, 64
        .skip:
            mov ebx, [esi]
            ret
        """)
        spec = InputSpec(
            entry="main",
            registers=(
                InputSpec.reg_high(EAX, [0, 1]),
                InputSpec.reg_symbol(ESI, "x"),
            ),
        )
        result = analyze(image, spec, CONFIG)
        # L ≤ |{s, s+64}| = 2, i.e. 1 bit, for the data-address observer.
        assert result.report.bits(D, "address") == 1.0
        assert_validated(image, spec, result,
                         layouts=[{"x": 0x9000000}, {"x": 0x9000040}, {"x": 0x9000104}])

    def test_low_unknown_pointer_alone_leaks_nothing(self):
        """Accessing *x for unknown-but-public x is a single observation:
        the analysis separates uncertainty about λ from leakage."""
        image = build("""
        .text
        main:
            mov ebx, [esi]
            mov ecx, [esi+4]
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_symbol(ESI, "x"),))
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(D, "address") == 0.0
        assert result.report.bits(I, "address") == 0.0


class TestAlignAndGather:
    def test_align_function(self):
        """The align() of Figure 3: buf - (buf & (bs-1)) + bs, via AND/ADD."""
        image = build("""
        .text
        main:
            and esi, 0xFFFFFFC0
            add esi, 0x40
            mov eax, [esi]
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_symbol(ESI, "buf"),))
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(D, "address") == 0.0

    def test_gather_loop_block_collapse(self):
        """gather: accesses buf[k + 8*i]; the block observer learns nothing,
        the address observer sees 8 candidates per iteration, the bank
        observer two (CacheBleed)."""
        iterations = 6
        image = build(f"""
        .text
        main:
            and esi, 0xFFFFFFC0     ; align(buf)
            add esi, 0x40
            mov ecx, 0              ; i = 0
        .loop:
            lea edx, [ecx*8]
            add edx, eax            ; k + 8i
            movzx ebx, byte [esi+edx]
            inc ecx
            cmp ecx, {iterations}
            jne .loop
            ret
        """)
        spec = InputSpec(
            entry="main",
            registers=(
                InputSpec.reg_high(EAX, range(8)),
                InputSpec.reg_symbol(ESI, "buf"),
            ),
        )
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(D, "block") == 0.0
        assert result.report.bits(D, "address") == 3.0 * iterations
        assert result.report.bits(D, "bank") == 1.0 * iterations
        assert result.report.bits(I, "address") == 0.0
        assert_validated(
            image, spec, result,
            layouts=[{"buf": 0x9000000}, {"buf": 0x9000123}, {"buf": 0x9000777}],
        )

    def test_pointer_offset_loop_terminates(self):
        """Example 7/8: loop guard via pointer comparison on a symbolic base."""
        image = build("""
        .text
        main:
            mov edi, esi
            add edi, 12            ; y = r + N (N = 12 bytes, 3 words)
        .loop:
            mov [esi], 0
            add esi, 4
            cmp esi, edi
            jne .loop
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_symbol(ESI, "r"),))
        result = analyze(image, spec, CONFIG)
        # Terminates (no fuel error) and leaks nothing.
        assert result.report.bits(D, "address") == 0.0
        assert result.engine_result.steps < 100


class TestBranchShapes:
    def test_branch_in_single_block_bblock_zero(self):
        """Example 9 / Figure 4: both arms inside one 64-byte block.

        The address observer sees 2 traces (1 bit); the block observer sees
        different repetition counts (1 bit); the stuttering block observer
        sees a single trace (0 bits)."""
        image = build("""
        .text
        .align 64
        main:
            test eax, eax
            jne .skip
            mov ebx, ecx
            mov ecx, edx
            mov edx, ebx
        .skip:
            sub edi, 1
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_high(EAX, [0, 1]),))
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(I, "address") == 1.0
        assert result.report.bits(I, "block") == 1.0
        bblock = result.report.bound(I, "block").stuttering_count
        assert bblock == 1  # 0 bits
        assert_validated(image, spec, result, layouts=[{}])

    def test_branch_arm_in_distinct_block_bblock_one(self):
        """The -O0 shape of Figure 9b: the taken arm touches its own block."""
        image = build("""
        .text
        .align 64
        main:
            test eax, eax
            je .skip
            jmp far_code
        .back:
        .skip:
            sub edi, 1
            ret
        .align 64
        far_code:
            mov ebx, ecx
            jmp main.back
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_high(EAX, [0, 1]),))
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(I, "block") == 1.0
        assert result.report.bound(I, "block").stuttering_count == 2  # 1 bit
        assert_validated(image, spec, result, layouts=[{}])

    def test_branch_refinement_excludes_impossible_index(self):
        """Figure 10's shape: if e0 == 0 ... else use table[e0-1].

        Without refining e0 to {1..7} on the else arm, the impossible index
        -1 would contribute an extra observation."""
        image = build("""
        .text
        main:
            cmp eax, 0
            je .zero
            lea edx, [eax*4-4]
            mov ebx, [table+edx]
            jmp .done
        .zero:
            mov ebx, esi
        .done:
            ret
        .data
        .align 64
        table: .space 28
        """)
        spec = InputSpec(
            entry="main",
            registers=(
                InputSpec.reg_high(EAX, range(8)),
                InputSpec.reg_symbol(ESI, "bp"),
            ),
        )
        result = analyze(image, spec, CONFIG)
        # 7 possible table slots + the e0=0 path's absence of the access.
        assert result.report.bound(D, "address").count == 8
        assert_validated(image, spec, result, layouts=[{"bp": 0x9000000}])

    def test_secret_branch_under_loop_accumulates(self):
        """k iterations of a 1-bit branch bound 2^k traces (address obs.)."""
        image = build("""
        .text
        main:
            mov ecx, 0
        .loop:
            mov ebx, eax
            shr ebx, cl
            and ebx, 1
            test ebx, ebx
            je .skip
            mov edx, 1
        .skip:
            inc ecx
            cmp ecx, 3
            jne .loop
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_high(EAX, range(8)),))
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(I, "address") == 3.0
        assert_validated(image, spec, result, layouts=[{}])


class TestCallsAndExterns:
    def test_call_ret_roundtrip(self):
        image = build("""
        .text
        main:
            call helper
            add eax, 1
            ret
        helper:
            mov eax, 5
            ret
        """)
        spec = InputSpec(entry="main")
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(I, "address") == 0.0

    def test_extern_clobber_models_stub(self):
        """A conditional call to a summarized extern leaks through I-cache."""
        image = build("""
        .text
        main:
            test eax, eax
            je .skip
            call mpi_mul
        .skip:
            ret
        .align 64
        mpi_mul:
            ret
        """)
        spec = InputSpec(
            entry="main",
            registers=(InputSpec.reg_high(EAX, [0, 1]),),
            extern_clobbers=("mpi_mul",),
        )
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(I, "block") == 1.0
        assert result.report.bits(D, "address") == 1.0  # return-address push

    def test_memory_init_through_symbol(self):
        """MemInit can seed symbolic heap locations (pointer tables)."""
        image = build("""
        .text
        main:
            mov ebx, [esi+4]
            mov ecx, [ebx]
            ret
        """)
        spec = InputSpec(
            entry="main",
            registers=(InputSpec.reg_symbol(ESI, "tab"),),
            memory=(MemInit(at=("tab", 4), symbol="entry1"),),
        )
        result = analyze(image, spec, CONFIG)
        assert result.report.bits(D, "address") == 0.0
        assert_validated(
            image, spec, result,
            layouts=[{"tab": 0x9000000, "entry1": 0x9100000}])


class TestDiagnostics:
    def test_fuel_exhaustion_is_loud(self):
        from repro.analysis.config import AnalysisError
        image = build("""
        .text
        main:
        .forever:
            jmp .forever
        """)
        small = AnalysisConfig(observer_names=("address",), fuel=50)
        with pytest.raises(AnalysisError, match="fuel"):
            analyze(image, InputSpec(entry="main"), small)

    def test_widening_records_warning(self):
        image = build("""
        .text
        main:
            mul ebx
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_symbol(EAX, "a"),
                                    InputSpec.reg_symbol(EBX, "b"),))
        result = analyze(image, spec, CONFIG)
        assert any("widened" in note for note in result.report.notes)
