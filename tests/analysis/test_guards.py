"""In-engine resource guards: deadlines, RSS ceilings, degrade-to-status.

The guard rides the timeline-sampling cadence inside the worklist loop, so
these tests shrink the check interval via ``REPRO_GUARD_STEPS`` — the
catalogue's fast-geometry scenarios finish in a few hundred steps, far
below the production 50k-step cadence.
"""

import pytest

from repro.analysis.config import (
    AnalysisConfig,
    AnalysisError,
    ResourceLimitError,
)
from repro.analysis.engine import GUARD_STEPS_ENV
from repro.casestudy.scenarios import sqm_scenario
from repro.sweep.runner import (
    DEADLINE_ENV,
    MAX_RSS_ENV,
    execute_scenario,
    execute_scenario_safe,
)


@pytest.fixture
def tight_guard(monkeypatch):
    monkeypatch.setenv(GUARD_STEPS_ENV, "10")


class TestConfigValidation:
    def test_negative_deadline_rejected(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(deadline_s=-1.0)

    def test_nonpositive_rss_rejected(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(max_rss_bytes=0)

    def test_unset_limits_are_the_default(self):
        config = AnalysisConfig()
        assert config.deadline_s is None and config.max_rss_bytes is None


class TestDeadlineGuard:
    def test_breach_degrades_to_timeout_status(self, monkeypatch, tight_guard):
        monkeypatch.setenv(DEADLINE_ENV, "0.000001")
        result = execute_scenario_safe(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.status == "timeout"
        assert not result.ok
        error = result.metrics["error"]
        assert error["type"] == "ResourceLimitError"
        assert "deadline" in error["message"]
        assert error["traceback"]

    def test_unsafe_path_raises_with_reason(self, monkeypatch, tight_guard):
        monkeypatch.setenv(DEADLINE_ENV, "0.000001")
        with pytest.raises(ResourceLimitError) as caught:
            execute_scenario(sqm_scenario(opt_level=2, line_bytes=64))
        assert caught.value.reason == "timeout"

    def test_generous_deadline_stays_ok(self, monkeypatch, tight_guard):
        monkeypatch.setenv(DEADLINE_ENV, "3600")
        result = execute_scenario_safe(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.ok and result.rows

    def test_malformed_deadline_is_ignored(self, monkeypatch, tight_guard):
        monkeypatch.setenv(DEADLINE_ENV, "soon")
        result = execute_scenario_safe(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.ok


class TestRssGuard:
    def test_breach_degrades_to_oom_status(self, monkeypatch, tight_guard):
        monkeypatch.setenv(MAX_RSS_ENV, "1")  # 1 MiB: any interpreter breaches
        result = execute_scenario_safe(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.status == "oom"
        assert result.metrics["error"]["type"] == "ResourceLimitError"

    def test_generous_ceiling_stays_ok(self, monkeypatch, tight_guard):
        monkeypatch.setenv(MAX_RSS_ENV, "65536")
        result = execute_scenario_safe(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.ok


class TestFailureHygiene:
    """Failed results are reported, never cached or stored."""

    def test_failed_result_keeps_scenario_identity(self, monkeypatch,
                                                   tight_guard):
        scenario = sqm_scenario(opt_level=2, line_bytes=64)
        monkeypatch.setenv(DEADLINE_ENV, "0.000001")
        result = execute_scenario_safe(scenario)
        assert result.scenario == scenario.name
        assert result.fingerprint == scenario.fingerprint()

    def test_store_refuses_non_ok_results(self, tmp_path, monkeypatch,
                                          tight_guard):
        from repro.sweep.results import ResultStore
        monkeypatch.setenv(DEADLINE_ENV, "0.000001")
        result = execute_scenario_safe(sqm_scenario(opt_level=2, line_bytes=64))
        store = ResultStore(tmp_path / "store.json")
        with pytest.raises(ValueError, match="non-ok"):
            store.put(result)

    def test_store_load_drops_non_ok_payloads(self, tmp_path):
        import json
        from repro.sweep.results import METRICS_SCHEMA, ResultStore
        path = tmp_path / "store.json"
        path.write_text(json.dumps({
            "version": 1,
            "results": {"feedface00000000": {
                "scenario": "x", "fingerprint": "feedface00000000",
                "kind": "leakage", "metrics_schema": METRICS_SCHEMA,
                "status": "error", "metrics": {}, "rows": [],
            }},
        }))
        assert len(ResultStore(path)) == 0

    def test_runner_retries_failures_next_run(self, tmp_path, monkeypatch,
                                              tight_guard):
        """A failure is not cached: clearing the guard heals the next run."""
        from repro.sweep import SweepRunner
        scenario = sqm_scenario(opt_level=2, line_bytes=64)
        runner = SweepRunner(store=tmp_path / "store.json")
        monkeypatch.setenv(DEADLINE_ENV, "0.000001")
        first = runner.run_one(scenario)
        assert first.status == "timeout"
        assert scenario.fingerprint() not in runner.store
        monkeypatch.delenv(DEADLINE_ENV)
        second = runner.run_one(scenario)
        assert second.ok and not second.cached
        assert scenario.fingerprint() in runner.store

    def test_status_ok_omitted_from_payload(self):
        result = execute_scenario_safe(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.ok
        assert "status" not in result.to_payload()
