"""Unit tests for the abstract flag domain (§5.4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.flags import FlagState, TOP_FLAGS, expand_flagbits
from repro.core.masked import FlagBits
from repro.isa.instructions import CONDITIONS, condition_holds


class TestExpansion:
    def test_fully_known(self):
        assert expand_flagbits(FlagBits(zf=1, cf=0, sf=0, of=0)) == {(1, 0, 0, 0)}

    def test_unknown_bits_expand(self):
        tuples = expand_flagbits(FlagBits(zf=1, cf=None, sf=0, of=None))
        assert len(tuples) == 4
        assert all(t[0] == 1 and t[2] == 0 for t in tuples)

    def test_all_unknown(self):
        assert len(expand_flagbits(FlagBits())) == 16


class TestFlagState:
    def test_top_has_all_outcomes(self):
        for condition in CONDITIONS:
            assert TOP_FLAGS.outcomes(condition) == {True, False}

    def test_determined_zero_flag(self):
        state = FlagState.from_flagbits([FlagBits(zf=1, cf=0, sf=0, of=0)])
        assert state.outcomes("e") == {True}
        assert state.outcomes("ne") == {False}

    def test_union_of_flagbits(self):
        state = FlagState.from_flagbits([
            FlagBits(zf=1, cf=0, sf=0, of=0),
            FlagBits(zf=0, cf=0, sf=0, of=0),
        ])
        assert state.outcomes("e") == {True, False}
        assert state.outcomes("b") == {False}  # CF = 0 in both

    def test_restrict(self):
        state = FlagState.from_flagbits([
            FlagBits(zf=1, cf=0, sf=0, of=0),
            FlagBits(zf=0, cf=1, sf=0, of=0),
        ])
        taken = state.restrict("e", True)
        assert taken.outcomes("e") == {True}
        assert taken.outcomes("b") == {False}

    def test_restrict_empty_rejected(self):
        state = FlagState.from_flagbits([FlagBits(zf=1, cf=0, sf=0, of=0)])
        with pytest.raises(ValueError):
            state.restrict("e", False)

    def test_join(self):
        a = FlagState.from_flagbits([FlagBits(zf=1, cf=0, sf=0, of=0)])
        b = FlagState.from_flagbits([FlagBits(zf=0, cf=0, sf=0, of=0)])
        assert a.join(b).outcomes("e") == {True, False}

    def test_equality_and_hash(self):
        a = FlagState.from_flagbits([FlagBits(zf=1, cf=0, sf=0, of=0)])
        b = FlagState.from_flagbits([FlagBits(zf=1, cf=0, sf=0, of=0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FlagState(frozenset())


@settings(max_examples=200, deadline=None)
@given(
    zf=st.sampled_from([0, 1, None]),
    cf=st.sampled_from([0, 1, None]),
    sf=st.sampled_from([0, 1, None]),
    of=st.sampled_from([0, 1, None]),
    condition=st.sampled_from(CONDITIONS),
)
def test_outcomes_cover_all_concrete_possibilities(zf, cf, sf, of, condition):
    """Every concrete flag assignment compatible with the abstract bits has
    its branch outcome included in the abstract outcome set."""
    state = FlagState.from_flagbits([FlagBits(zf=zf, cf=cf, sf=sf, of=of)])
    outcomes = state.outcomes(condition)
    for concrete in state.tuples:
        assert condition_holds(condition, *concrete) in outcomes
