"""Extensions of the observer coverage: the shared-cache access stream
(paper footnote 5) and the page-trace observer (§3.2)."""

from repro.analysis.analyzer import analyze
from repro.analysis.config import AnalysisConfig
from repro.casestudy import targets
from repro.core.leakage import log2_int
from repro.core.observers import AccessKind

I, D, S = AccessKind.INSTRUCTION, AccessKind.DATA, AccessKind.SHARED


def with_kinds(config: AnalysisConfig, kinds) -> AnalysisConfig:
    from dataclasses import replace
    return replace(config, kinds=kinds)


class TestSharedCache:
    def test_shared_at_least_max_of_split(self):
        """Paper footnote 5: shared-cache leakage was consistently the max
        of the I- and D-cache leakages for all analyzed instances."""
        target = targets.sqm_target()
        config = with_kinds(target.config, (I, D, S))
        result = analyze(target.image, target.spec, config)
        for observer in ("address", "block"):
            shared = result.report.bits(S, observer)
            split_max = max(result.report.bits(I, observer),
                            result.report.bits(D, observer))
            assert shared >= split_max

    def test_shared_zero_for_secure_kernel(self):
        target = targets.defensive_gather_target(nbytes=8)
        config = with_kinds(target.config, (I, D, S))
        result = analyze(target.image, target.spec, config)
        assert result.report.bits(S, "address") == 0.0


class TestPageObserver:
    def _with_page(self, target):
        from dataclasses import replace
        config = replace(target.config,
                         observer_names=("address", "block", "page"))
        return analyze(target.image, target.spec, config)

    def test_gather_page_bound_is_tiny(self):
        """The gather offsets span < 2 pages, so the page observer's bound
        collapses via the spread refinement (≤ 2 observations/access)."""
        nbytes = 16
        result = self._with_page(targets.gather_target(nbytes=nbytes))
        page_bits = result.report.bits(D, "page")
        address_bits = result.report.bits(D, "address")
        assert page_bits <= nbytes * log2_int(2)
        assert page_bits < address_bits

    def test_secure_kernel_page_silent(self):
        result = self._with_page(targets.secure_retrieve_target(nlimbs=4))
        assert result.report.bits(D, "page") == 0.0
        assert result.report.bits(I, "page") == 0.0

    def test_branch_leaks_to_page_observer_only_if_pages_differ(self):
        """The 1.5.2 conditional call stays within one page here, so the
        page observer is weaker than the block observer."""
        result = self._with_page(targets.sqm_target())
        assert result.report.bits(I, "page") <= result.report.bits(I, "block")
