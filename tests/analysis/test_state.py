"""Unit tests for the abstract machine state and abstract memory."""

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.state import AbsMemory, AbsState, AnalysisContext
from repro.core.masked import MaskedSymbol
from repro.core.valueset import ValueSet

WIDTH = 32


@pytest.fixture()
def context():
    return AnalysisContext(AnalysisConfig(observer_names=("address",)))


def const(value):
    return ValueSet.constant(value, WIDTH)


class TestConcreteMemory:
    def test_write_read_roundtrip(self, context):
        memory = AbsMemory()
        memory.write(const(0x1000), const(42), 4, context)
        assert memory.read(const(0x1000), 4, context).value == 42

    def test_unwritten_reads_are_fresh_but_stable(self, context):
        memory = AbsMemory()
        first = memory.read(const(0x2000), 4, context)
        second = memory.read(const(0x2000), 4, context)
        assert first == second  # cached unknown
        assert first.has_symbolic

    def test_distinct_locations_distinct_unknowns(self, context):
        memory = AbsMemory()
        a = memory.read(const(0x2000), 4, context)
        b = memory.read(const(0x3000), 4, context)
        assert a != b

    def test_byte_extraction_from_word(self, context):
        memory = AbsMemory()
        memory.write(const(0x1000), const(0x11223344), 4, context)
        assert memory.read(const(0x1001), 1, context).value == 0x33
        assert memory.read(const(0x1000), 1, context).value == 0x44

    def test_overlapping_write_invalidates(self, context):
        memory = AbsMemory()
        memory.write(const(0x1000), const(0xAABBCCDD), 4, context)
        memory.write(const(0x1002), const(0x11), 1, context)
        # The dword slot is gone; a fresh read is unknown (sound).
        value = memory.read(const(0x1000), 4, context)
        assert value.has_symbolic

    def test_byte_read_of_unwritten_is_byte_sized(self, context):
        memory = AbsMemory()
        value = memory.read(const(0x4000), 1, context)
        element = next(iter(value))
        # High 24 bits must be known zero.
        assert element.mask.bit_at(8) == 0
        assert element.mask.bit_at(31) == 0


class TestSymbolicMemory:
    def _pointer(self, context, name="p"):
        sym = context.table.input_symbol(name)
        return ValueSet([MaskedSymbol.symbol(sym, WIDTH)])

    def test_symbolic_base_roundtrip(self, context):
        memory = AbsMemory()
        pointer = self._pointer(context)
        memory.write(pointer, const(7), 4, context)
        assert memory.read(pointer, 4, context).value == 7

    def test_offsets_address_distinct_slots(self, context):
        memory = AbsMemory()
        base = self._pointer(context)
        offset4, _ = context.ops.add(base, const(4))
        memory.write(base, const(1), 4, context)
        memory.write(offset4, const(2), 4, context)
        assert memory.read(base, 4, context).value == 1
        assert memory.read(offset4, 4, context).value == 2

    def test_weak_update_through_secret_address(self, context):
        memory = AbsMemory()
        base = self._pointer(context)
        secret_offsets = ValueSet.constants([0, 4], WIDTH)
        addresses, _ = context.ops.add(base, secret_offsets)
        memory.write(base, const(10), 4, context)
        memory.write(addresses, const(99), 4, context)  # weak: 2 candidates
        value = memory.read(base, 4, context)
        values = {e.value for e in value if e.is_constant}
        assert {10, 99} <= values  # old value must survive a weak update

    def test_secret_address_read_joins(self, context):
        memory = AbsMemory()
        base = self._pointer(context)
        memory.write(base, const(1), 4, context)
        offset4, _ = context.ops.add(base, const(4))
        memory.write(offset4, const(2), 4, context)
        addresses, _ = context.ops.add(base, ValueSet.constants([0, 4], WIDTH))
        value = memory.read(addresses, 4, context)
        assert value.constant_values() == {1, 2}


class TestJoin:
    def test_join_unions_values(self, context):
        a, b = AbsMemory(), AbsMemory()
        a.write(const(0x1000), const(1), 4, context)
        b.write(const(0x1000), const(2), 4, context)
        joined = a.join(b, context)
        assert joined.read(const(0x1000), 4, context).constant_values() == {1, 2}

    def test_one_sided_entry_reads_include_unknown(self, context):
        a, b = AbsMemory(), AbsMemory()
        a.write(const(0x1000), const(1), 4, context)
        joined = a.join(b, context)
        value = joined.read(const(0x1000), 4, context)
        assert value.has_symbolic  # maybe-unwritten on the b side
        assert 1 in {e.value for e in value if e.is_constant}

    def test_mismatched_sizes_drop_to_unknown(self, context):
        a, b = AbsMemory(), AbsMemory()
        a.write(const(0x1000), const(1), 4, context)
        b.write(const(0x1000), const(2), 1, context)
        joined = a.join(b, context)
        assert joined.read(const(0x1000), 4, context).has_symbolic


class TestCopyTracking:
    def test_record_and_query(self, context):
        state = AbsState.initial(context)
        state.record_copy(0, 3)
        state.record_copy(1, 0)
        assert state.equal_registers(3) == {0, 1, 3}

    def test_invalidation_on_write(self, context):
        state = AbsState.initial(context)
        state.record_copy(0, 3)
        state.invalidate_copy(0)
        assert state.equal_registers(3) == {3}

    def test_rebinding_replaces(self, context):
        state = AbsState.initial(context)
        state.record_copy(0, 3)
        state.record_copy(0, 5)  # eax now copies ebp, not ebx
        assert 3 not in state.equal_registers(0)
        assert 5 in state.equal_registers(0)

    def test_join_keeps_common_copies_only(self, context):
        a = AbsState.initial(context)
        b = a.clone()
        a.record_copy(0, 3)
        a.record_copy(1, 2)
        b.record_copy(0, 3)
        joined = a.join(b, context)
        assert (0, 3) in joined.copies
        assert (1, 2) not in joined.copies

    def test_clone_preserves_copies(self, context):
        state = AbsState.initial(context)
        state.record_copy(0, 3)
        assert state.clone().equal_registers(0) == {0, 3}
