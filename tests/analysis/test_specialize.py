"""Compile-tier fidelity: specialized blocks match the interpreter, bit for bit.

Three layers of evidence:

1. **Catalogue differential.**  Every scenario in the sweep catalogue runs
   twice — specialization on and off — and the full result payloads (figure
   counts, leakage bounds, adversary rows, warnings, and the step/merge/fork
   scheduler counters) must be identical.  Only the counters that *describe*
   the execution mode (``spec_*``, cache hit counters) may differ.
2. **Random-program differential.**  Hypothesis generates straight-line
   instruction sequences over the supported mnemonic set; the specialized
   block function and the stepwise ``Transfer.step`` path must produce the
   same abstract state (registers, flags, flag provenance) and the same
   data-access sequence, starting from fresh, identical contexts.
3. **Counter invariants.**  ``spec_steps + interp_steps == steps`` and
   ``decode_hits + decode_misses == steps`` hold in every mode, and both
   the config knob and the ``REPRO_NO_SPECIALIZE`` env var actually turn
   the tier off.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.analyzer import build_initial_state
from repro.analysis.config import AnalysisConfig, InputSpec
from repro.analysis.engine import Engine
from repro.analysis.specialize import (
    NO_SPECIALIZE_ENV,
    specialization_enabled,
    specialized_program,
)
from repro.analysis.state import AnalysisContext
from repro.analysis.transfer import Transfer
from repro.casestudy.scenarios import all_scenarios
from repro.isa import parse_asm
from repro.isa.registers import EAX, EBX, ESI, ESP
from repro.sweep.runner import execute_scenario

# Metric keys that legitimately depend on the execution mode (how the work
# was done) or process history, as opposed to what the analysis computed.
# Everything else in the payload must be bit-identical across modes.
MODE_SENSITIVE_METRICS = frozenset((
    "spec_blocks", "spec_block_runs", "spec_steps", "interp_steps",
    "cache_evictions",
    "decode_hits", "decode_misses",
    "projection_hits", "projection_misses",
    "lift_memo_hits", "lift_memo_misses", "lift_memo_evictions",
    "vs_intern_hits", "vs_intern_misses",
    "sym_intern_hits", "sym_intern_misses",
    "vec_ops", "vec_pairs", "vec_scalar_pairs",
))


def _comparable_payload(result) -> dict:
    payload = result.to_payload()
    payload["metrics"] = {
        key: value for key, value in payload["metrics"].items()
        if key not in MODE_SENSITIVE_METRICS
    }
    return payload


class TestCatalogueDifferential:
    """Every catalogue scenario, specialization on vs off."""

    def test_every_scenario_bit_identical(self, monkeypatch):
        mismatches = []
        for name, scenario in sorted(all_scenarios().items()):
            monkeypatch.delenv(NO_SPECIALIZE_ENV, raising=False)
            with_tier = _comparable_payload(execute_scenario(scenario))
            monkeypatch.setenv(NO_SPECIALIZE_ENV, "1")
            without_tier = _comparable_payload(execute_scenario(scenario))
            if with_tier != without_tier:
                mismatches.append(name)
        assert not mismatches, mismatches


# ----------------------------------------------------------------------
# Random straight-line programs through both paths
# ----------------------------------------------------------------------

_REGS = ("eax", "ebx", "ecx", "edx")
_DISPS = (0, 4, 8, 12)

_reg = st.sampled_from(_REGS)
_imm = st.integers(min_value=0, max_value=0xFFFFFFFF)
_small = st.integers(min_value=0, max_value=31)
_disp = st.sampled_from(_DISPS)

_instruction = st.one_of(
    st.tuples(st.just("mov {}, {}"), _reg, _reg),
    st.tuples(st.just("mov {}, {}"), _reg, _imm),
    st.tuples(st.sampled_from(
        ["add {}, {}", "sub {}, {}", "and {}, {}",
         "or {}, {}", "xor {}, {}", "imul {}, {}"]), _reg, _reg),
    st.tuples(st.sampled_from(
        ["add {}, {}", "and {}, {}", "xor {}, {}", "cmp {}, {}"]),
        _reg, _imm),
    st.tuples(st.sampled_from(
        ["inc {}", "dec {}", "neg {}", "not {}", "push {}"]), _reg),
    st.tuples(st.just("test {}, {}"), _reg, _reg),
    st.tuples(st.sampled_from(
        ["shl {}, {}", "shr {}, {}", "sar {}, {}"]), _reg, _small),
    st.tuples(st.just("mov {}, [esi + {}]"), _reg, _disp),
    st.tuples(st.just("mov [esi + {}], {}"), _disp, _reg),
)


def _render(parts) -> str:
    template, *operands = parts
    return template.format(*operands)


def _assemble(lines):
    source = ".text\nmain:\n" + "".join(f"    {line}\n" for line in lines)
    source += "    ret\n"
    return parse_asm(source).assemble()


def _fresh_run_state(image):
    """A fresh context + initial state: one symbolic secret, one public
    pointer, a concrete stack — exercises constants, masked symbols, and
    fresh-symbol allocation on both paths."""
    spec = InputSpec(
        entry="main",
        registers=(
            InputSpec.reg_high(EAX, (0, 1, 2, 3)),
            InputSpec.reg_symbol(EBX, "pub"),
            InputSpec.reg_constant(ESI, 0x080E_B000),
            InputSpec.reg_constant(ESP, 0x0900_0000),
        ),
    )
    context = AnalysisContext(AnalysisConfig())
    state, _ = build_initial_state(context, spec, image)
    return context, state


@settings(max_examples=40, deadline=None)
@given(parts=st.lists(_instruction, min_size=2, max_size=8))
def test_specialized_block_matches_stepwise_transfer(parts):
    lines = [_render(instruction_parts) for instruction_parts in parts]
    image = _assemble(lines)
    entry = image.symbol("main")
    program = specialized_program(image, entry)
    assert entry in program.blocks, lines  # every template is supported
    n_steps = program.blocks[entry][0]
    assert n_steps == len(lines)

    # Interpreted reference: Transfer.step over each instruction.
    context_interp, state_interp = _fresh_run_state(image)
    transfer = Transfer(context_interp, image)
    data_accesses_interp = []

    def record(kind, address, size):
        if kind == "D":
            data_accesses_interp.append(repr(address))

    pc = entry
    for _ in range(n_steps):
        instruction = image.decode_at(pc)
        successors = transfer.step(state_interp, instruction, record)
        assert len(successors) == 1  # straight-line by construction
        pc = successors[0].pc

    # Specialized path: one compiled call on a fresh identical context.
    context_spec, state_spec = _fresh_run_state(image)
    bound = program.bind(context_spec)
    block = bound[entry]
    assert block.n_steps == n_steps and block.end_pc == pc
    data_accesses_spec = []
    block.fn(state_spec, data_accesses_spec.append)

    # Fresh contexts allocate symbols in the same order, so identical
    # abstract values have identical printed forms.
    for reg in range(8):
        assert repr(state_spec.regs[reg]) == repr(state_interp.regs[reg]), reg
    assert state_spec.flags == state_interp.flags
    assert repr(state_spec.flag_source) == repr(state_interp.flag_source)
    assert [repr(a) for a in data_accesses_spec] == data_accesses_interp


# ----------------------------------------------------------------------
# Counter invariants and kill switches
# ----------------------------------------------------------------------

_COUNTER_PROGRAM = """
.text
main:
    mov ebx, [esi]
    add ebx, 1
    xor ebx, 81
    mov [esi], ebx
    ret
"""


def _run_engine(specialize: bool):
    image = parse_asm(_COUNTER_PROGRAM).assemble()
    spec = InputSpec(entry="main",
                     registers=(InputSpec.reg_constant(ESI, 0x080E_B000),))
    context = AnalysisContext(AnalysisConfig(specialize=specialize))
    engine = Engine(image, context, Transfer(context, image))
    state, _ = build_initial_state(context, spec, image)
    result = engine.run(image.symbol("main"), state)
    return result, engine.stats


class TestCounterInvariants:
    @pytest.fixture(autouse=True)
    def _tier_enabled(self, monkeypatch):
        """These tests choose the mode explicitly; an inherited
        REPRO_NO_SPECIALIZE (e.g. a full-suite ablation run) must not
        override the config knob under test."""
        monkeypatch.delenv(NO_SPECIALIZE_ENV, raising=False)

    def test_spec_plus_interp_steps_is_steps(self):
        result, stats = _run_engine(specialize=True)
        assert stats.spec_steps > 0
        assert stats.spec_steps + stats.interp_steps == result.steps
        assert stats.decode_hits + stats.decode_misses == result.steps

    def test_config_knob_disables_tier(self):
        result, stats = _run_engine(specialize=False)
        assert stats.spec_steps == 0 and stats.spec_blocks == 0
        assert stats.interp_steps == result.steps
        assert stats.decode_hits + stats.decode_misses == result.steps

    def test_env_var_disables_tier(self, monkeypatch):
        monkeypatch.setenv(NO_SPECIALIZE_ENV, "1")
        result, stats = _run_engine(specialize=True)
        assert stats.spec_steps == 0 and stats.spec_blocks == 0
        assert stats.interp_steps == result.steps

    def test_specialization_enabled_gate(self, monkeypatch):
        monkeypatch.delenv(NO_SPECIALIZE_ENV, raising=False)
        assert specialization_enabled(AnalysisConfig())
        assert not specialization_enabled(AnalysisConfig(specialize=False))
        monkeypatch.setenv(NO_SPECIALIZE_ENV, "1")
        assert not specialization_enabled(AnalysisConfig())

    def test_spec_step_rate_bounded(self):
        _, stats = _run_engine(specialize=True)
        assert 0.0 < stats.spec_step_rate <= 1.0

    def test_program_cache_reuses_compiled_code(self):
        image = parse_asm(_COUNTER_PROGRAM).assemble()
        entry = image.symbol("main")
        first = specialized_program(image, entry)
        assert specialized_program(image, entry) is first
