"""End-to-end randomized soundness: Theorem 1 on generated programs.

Hypothesis generates small branchy programs over a template (secret-indexed
table accesses, secret-dependent branches, pointer arithmetic on an unknown
heap base), the analyzer bounds each observer's observations, and the
concrete VM enumerates every secret under several heap layouts to check
``|views| ≤ bound``.  This is the strongest regression the reproduction has:
any unsound corner of the masked-symbol domain, the projections, the DAG
counting, or the engine shows up here as a concrete counterexample.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.analyzer import analyze
from repro.analysis.config import AnalysisConfig, InputSpec
from repro.analysis.validation import ConcreteValidator
from repro.core.observers import CacheGeometry
from repro.isa.asmparse import parse_asm
from repro.isa.registers import EAX, ESI

CONFIG = AnalysisConfig(
    geometry=CacheGeometry(line_bytes=64),
    observer_names=("address", "bank", "block"),
)

LAYOUTS = [
    {"p": 0x09000000},
    {"p": 0x09000037},
    {"p": 0x090000F8},
]


@st.composite
def secret_programs(draw):
    """A small program reading memory at secret- and loop-dependent offsets."""
    lines = [".text", "main:"]
    # Optional alignment mask on the unknown base pointer.
    if draw(st.booleans()):
        lines.append("    and esi, 0xFFFFFFC0")
    if draw(st.booleans()):
        lines.append(f"    add esi, {draw(st.integers(min_value=0, max_value=64))}")

    body_kind = draw(st.sampled_from(["branch", "indexed", "both"]))
    scale = draw(st.sampled_from([1, 2, 4, 8]))
    if body_kind in ("indexed", "both"):
        lines += [
            f"    lea edx, [eax*{scale}]",
            "    mov ebx, [esi+edx]",
        ]
    if body_kind in ("branch", "both"):
        lines += [
            "    test eax, eax",
            "    je .skip",
            f"    add esi, {draw(st.sampled_from([4, 32, 64]))}",
            "    mov ecx, [esi]",
            ".skip:",
        ]
    lines += [
        "    mov ebx, [esi]",
        "    ret",
    ]
    secret_count = draw(st.sampled_from([2, 4, 8]))
    return "\n".join(lines), secret_count


@settings(max_examples=25, deadline=None)
@given(program=secret_programs())
def test_random_program_bounds_dominate(program):
    text, secret_count = program
    image = parse_asm(text).assemble()
    spec = InputSpec(
        entry="main",
        registers=(
            InputSpec.reg_high(EAX, range(secret_count)),
            InputSpec.reg_symbol(ESI, "p"),
        ),
    )
    result = analyze(image, spec, CONFIG)
    validator = ConcreteValidator(image, spec)
    outcome = validator.check(result, LAYOUTS)
    assert outcome.ok, f"{outcome.violations}\nprogram:\n{text}"


@settings(max_examples=15, deadline=None)
@given(
    iterations=st.integers(min_value=1, max_value=6),
    stride=st.sampled_from([1, 4, 8]),
    secret_count=st.sampled_from([2, 8]),
)
def test_random_loop_bounds_dominate(iterations, stride, secret_count):
    """Counted loops over secret-offset accesses stay sound."""
    text = f"""
    .text
    main:
        and esi, 0xFFFFFFC0
        mov ecx, 0
    .loop:
        lea edx, [ecx*{stride}]
        add edx, eax
        movzx ebx, byte [esi+edx]
        inc ecx
        cmp ecx, {iterations}
        jne .loop
        ret
    """
    image = parse_asm(text).assemble()
    spec = InputSpec(
        entry="main",
        registers=(
            InputSpec.reg_high(EAX, range(secret_count)),
            InputSpec.reg_symbol(ESI, "p"),
        ),
    )
    result = analyze(image, spec, CONFIG)
    validator = ConcreteValidator(image, spec)
    outcome = validator.check(result, LAYOUTS)
    assert outcome.ok, outcome.violations
