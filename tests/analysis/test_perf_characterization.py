"""Performance architecture characterization and its bit-identity locks.

Two complementary guarantees:

1. **Nothing measurable moved.**  The interning layer, the zero-copy joins,
   the eager DAG counting, and the registry fast paths are pure performance
   work — the fig14 family's engine counters (steps, merges, forks,
   max_configs) must stay exactly at the values captured from the seed
   revision, on top of the observation-count locks in
   ``tests/sweep/test_sweep.py``.

2. **The layer is actually on.**  Per-run intern/memo hit counters are
   recorded on ``SchedulerStats`` (and surfaced through
   ``SweepResult.metrics``); they must be populated, deterministic per
   scenario, and show real sharing on the workloads the layer exists for.
"""

import dataclasses

from repro.analysis.engine import SchedulerStats
from repro.analysis.specialize import NO_SPECIALIZE_ENV
from repro.casestudy import experiments, targets


# Engine counters captured from the seed revision (pre-interning) at the
# regression geometry of tests/sweep/test_sweep.py::TestFigureRegression.
# Any drift means an optimization changed what the engine *does*, not just
# how fast it does it.
SEED_ENGINE_COUNTERS = {
    "figure14a": {"steps": 50, "max_configs": 2, "merges": 1, "forks": 1},
    "figure14b": {"steps": 2957, "max_configs": 1, "merges": 0, "forks": 0},
    "figure14c": {"steps": 797, "max_configs": 1, "merges": 0, "forks": 0},
    "figure14d": {"steps": 4285, "max_configs": 1, "merges": 0, "forks": 0},
}

INTERN_METRIC_KEYS = (
    "vs_intern_hits", "vs_intern_misses",
    "sym_intern_hits", "sym_intern_misses",
)


def _fig14_results():
    return {
        "figure14a": experiments.figure14a(),
        "figure14b": experiments.figure14b(nlimbs=8),
        "figure14c": experiments.figure14c(nbytes=32),
        "figure14d": experiments.figure14d(nbytes=16),
    }


class TestEngineCountersPinned:
    def test_fig14_family_counters_unchanged_from_seed(self):
        mismatches = []
        for name, result in _fig14_results().items():
            metrics = result.analysis.metrics
            measured = {key: metrics[key] for key in SEED_ENGINE_COUNTERS[name]}
            if measured != SEED_ENGINE_COUNTERS[name]:
                mismatches.append((name, measured, SEED_ENGINE_COUNTERS[name]))
        assert not mismatches, mismatches

    def test_full_sorts_still_zero(self):
        for name, result in _fig14_results().items():
            assert result.analysis.metrics["full_sorts"] == 0, name


class TestInternCountersOnStats:
    def test_scheduler_stats_grow_intern_fields(self):
        fields = {spec.name for spec in dataclasses.fields(SchedulerStats)}
        assert set(INTERN_METRIC_KEYS) <= fields

    def test_intern_counters_populated_and_in_metrics(self):
        """Every leakage scenario records nonzero interning activity."""
        for name, result in _fig14_results().items():
            metrics = result.analysis.metrics
            for key in INTERN_METRIC_KEYS:
                assert key in metrics, (name, key)
            assert metrics["vs_intern_hits"] > 0, name
            assert metrics["vs_intern_misses"] > 0, name
            assert metrics["sym_intern_hits"] > 0, name

    def test_interning_achieves_real_sharing_on_gather(self, monkeypatch):
        """The workload the layer exists for: the straight-line gather remix
        of the same constants/addresses should answer most value-set
        constructions from the intern table.  Characterizes the interpreted
        path: the compile tier prebinds constants per run, so with it on the
        repetitive constructions this rate measures never happen at all."""
        monkeypatch.setenv(NO_SPECIALIZE_ENV, "1")
        result = targets.gather_target(nbytes=32).analyze()
        scheduler = result.engine_result.scheduler
        assert scheduler.vs_intern_hit_rate > 0.5
        assert 0.0 <= scheduler.sym_intern_hit_rate <= 1.0
        assert scheduler.lift_memo_hit_rate > 0.3

    def test_intern_counters_deterministic_per_scenario(self):
        """AnalysisContext clears the intern tables, so re-running the same
        analysis — no matter what ran before it — reproduces the counters."""
        first = targets.gather_target(nbytes=16).analyze()
        # Pollute the process interning state with an unrelated analysis.
        targets.sqam_target().analyze()
        second = targets.gather_target(nbytes=16).analyze()
        for key in INTERN_METRIC_KEYS + ("lift_memo_hits", "lift_memo_misses"):
            assert (getattr(first.engine_result.scheduler, key)
                    == getattr(second.engine_result.scheduler, key)), key

    def test_hit_rate_properties_bounded(self):
        stats = SchedulerStats()
        assert stats.vs_intern_hit_rate == 0.0
        assert stats.sym_intern_hit_rate == 0.0
        stats.vs_intern_hits = 3
        stats.vs_intern_misses = 1
        assert stats.vs_intern_hit_rate == 0.75


class TestReusedEngineDagIdempotence:
    """A re-run on a reused Engine must not duplicate DAG chains.

    Engine DAGs skip registry dedupe until the first fork; a *second*
    ``run()`` starts from the root again and may repeat keys the fork-free
    first run never registered — the engine backfills the registries before
    re-exploring, restoring the always-deduping registry's idempotence."""

    PROGRAM = """
    .text
    main:
        mov ebx, [esi]
        add ebx, 1
        mov [esi], ebx
        ret
    """

    def test_fork_free_rerun_does_not_grow_the_dags(self):
        from repro.analysis.analyzer import build_initial_state
        from repro.analysis.config import AnalysisConfig, InputSpec
        from repro.analysis.engine import Engine
        from repro.analysis.state import AnalysisContext
        from repro.analysis.transfer import Transfer
        from repro.isa import parse_asm
        from repro.isa.registers import ESI

        image = parse_asm(self.PROGRAM).assemble()
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_constant(ESI, 0x080E_B000),))
        context = AnalysisContext(AnalysisConfig())
        engine = Engine(image, context, Transfer(context, image))
        entry = image.symbol("main")

        state_one, _ = build_initial_state(context, spec, image)
        first = engine.run(entry, state_one)
        assert first.forks == 0  # fork-free: dedupe stayed off in run 1
        sizes = {key: dag.size for key, dag in engine.dags.items()}

        state_two, _ = build_initial_state(context, spec, image)
        second = engine.run(entry, state_two)
        assert {key: dag.size for key, dag in engine.dags.items()} == sizes
        for key, dag in engine.dags.items():
            assert (dag.count(second.final_vertices[key])
                    == dag.count(first.final_vertices[key]))


class TestJoinFastPathsKeepWidening:
    """The identity fast paths must not bypass the cap: joining an over-cap
    value with itself widened it before the fast paths existed, and still
    must (interning makes equal sets identical, so this is reachable for
    any over-cap set that survives to a merge point, e.g. wide-multiply
    constant products)."""

    def test_identical_over_cap_register_still_widens(self):
        from repro.analysis.config import AnalysisConfig
        from repro.analysis.state import AbsState, AnalysisContext
        from repro.core.valueset import ValueSet

        context = AnalysisContext(AnalysisConfig(value_set_cap=4))
        state = AbsState.initial(context)
        big = ValueSet.constants(range(10), 32)
        state.regs[0] = big
        joined = state.join(state.clone(), context)
        assert joined.regs[0] is not big
        assert joined.regs[0].has_symbolic  # widened to a fresh unknown

    def test_identical_over_cap_memory_slot_still_widens(self):
        from repro.analysis.config import AnalysisConfig
        from repro.analysis.state import AbsState, AnalysisContext
        from repro.core.valueset import ValueSet

        context = AnalysisContext(AnalysisConfig(value_set_cap=4))
        state = AbsState.initial(context)
        address = ValueSet.constant(0x1000, 32)
        state.memory.write(address, ValueSet.constants(range(10), 32), 4, context)
        joined = state.memory.join(state.clone().memory, context)
        assert joined.read(address, 4, context).has_symbolic
