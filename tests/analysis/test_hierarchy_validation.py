"""Spy-replay soundness for the shared-LLC catalogue: every ``probe``
bound in hierarchy_scenarios() must dominate the concrete prime+probe
views under LRU, FIFO, and tree-PLRU — and the grid must contain both a
real cross-core leak and its closure by hardening."""

import pytest

from repro.analysis.analyzer import analyze
from repro.analysis.validation import ConcreteValidator
from repro.casestudy import targets
from repro.casestudy.scenarios import hierarchy_scenarios
from repro.core.adversary import PROBE, spy_probe_view
from repro.core.observers import AccessKind
from repro.sweep.runner import _overridden_config
from repro.vm.cache import CacheHierarchy, HierarchySpec

POLICY_SWEEP = ("lru", "fifo", "plru")

CATALOGUE = hierarchy_scenarios()

SHARED_PROBE = (AccessKind.SHARED, PROBE)


@pytest.fixture(scope="module")
def analyses():
    """One analysis per distinct victim.

    The static bounds are independent of the concrete hierarchy shape and
    the validation policy, so the mode/policy variants of one victim share
    a single (expensive) analysis; only the interleaved replay differs.
    """
    cache = {}

    def get(scenario):
        key = (scenario.target, scenario.params, scenario.transforms)
        if key not in cache:
            target = scenario.build_target()
            config = _overridden_config(target.config, scenario)
            cache[key] = (target, analyze(target.image, target.spec, config))
        return cache[key]

    return get


class TestProbeBoundSoundness:
    @pytest.mark.parametrize("name", sorted(CATALOGUE))
    def test_spy_replay_within_bound(self, name, analyses):
        """Interleaved prime+probe replay across all three policies."""
        scenario = CATALOGUE[name]
        target, result = analyses(scenario)
        assert SHARED_PROBE in result.report.adversaries
        validator = ConcreteValidator(target.image, target.spec)
        outcome = validator.check_adversaries(
            result, targets.default_layouts(target.name)[:1],
            policies=POLICY_SWEEP, models=(PROBE,),
            hierarchy=HierarchySpec.from_wire(scenario.hierarchy))
        assert outcome.checked == len(POLICY_SWEEP)
        assert outcome.ok, outcome.violations


class TestCrossCoreLeakAndClosure:
    """The grid's headline: the AES and lookup bases leak through the
    shared LLC; their preload-based hardened variants do not."""

    def test_aes_base_leaks_to_spy(self, analyses):
        _target, result = analyses(CATALOGUE["aes-O2-64B-llc-incl-lru"])
        assert result.report.adversaries[SHARED_PROBE].count > 1

    def test_lookup_base_leaks_to_spy(self, analyses):
        _target, result = analyses(CATALOGUE["lookup-O2-64B-llc-incl-lru"])
        assert result.report.adversaries[SHARED_PROBE].count > 1

    @pytest.mark.parametrize("name", [
        "aes-O2-64B-preload-aligned-llc-incl-lru",
        "aes-O2-64B-preload-aligned-llc-excl-plru",
        "lookup-O2-64B-hardened-llc-incl-lru",
    ])
    def test_hardened_variants_close_the_channel(self, name, analyses):
        _target, result = analyses(CATALOGUE[name])
        bound = result.report.adversaries[SHARED_PROBE]
        assert bound.count == 1 and bound.is_non_interferent

    def test_leak_concretely_observable(self, analyses):
        """Not just a loose bound: under the tree-PLRU inclusive LLC the
        spy really does collect several distinct probe vectors."""
        scenario = CATALOGUE["aes-O2-64B-llc-incl-plru"]
        target, result = analyses(scenario)
        validator = ConcreteValidator(target.image, target.spec)
        lam = targets.default_layouts(target.name)[0]
        spec = HierarchySpec.from_wire(scenario.hierarchy)
        views = {
            spy_probe_view(trace.view("shared", 0), CacheHierarchy(spec))
            for trace in validator._collect_traces(lam)}
        assert len(views) > 1
        assert len(views) <= result.report.adversaries[SHARED_PROBE].count


class TestHierarchyScenarioShape:
    """Catalogue hygiene for the new family (cheap, no execution)."""

    def test_grid_covers_both_modes_and_three_policies(self):
        modes = {scenario.hierarchy[1] for scenario in CATALOGUE.values()}
        policies = {scenario.cache_policy for scenario in CATALOGUE.values()}
        assert modes == {"inclusive", "exclusive"}
        assert policies == {"lru", "fifo", "plru"}

    def test_every_entry_requests_the_probe_model(self):
        for scenario in CATALOGUE.values():
            assert "SHARED" in scenario.kinds
            assert "probe" in scenario.adversaries
            assert scenario.hierarchy is not None

    def test_hierarchy_wire_round_trips(self):
        for scenario in CATALOGUE.values():
            spec = HierarchySpec.from_wire(scenario.hierarchy)
            assert spec.to_wire() == scenario.hierarchy
            assert spec.cores == 2
