"""Vector-tier fidelity: numpy-batched lifts match the scalar path, bit for bit.

The same three layers of evidence as the compile tier's
``test_specialize.py``:

1. **Catalogue differential.**  Every scenario in the sweep catalogue runs
   twice — vectorization on and off — and the full result payloads (figure
   counts, leakage bounds, adversary rows, warnings, and the step/merge/fork
   scheduler counters) must be identical.  Only the counters that *describe*
   the execution mode (``vec_*`` and the other cache-hit counters) may
   differ.
2. **Random-operand differential.**  Hypothesis generates operand value
   sets — all-constant and mixed constant/masked-symbol — large enough to
   engage the numpy kernels, and each of the five vectorized liftings
   (AND, OR, XOR, ADD, constant shifts) must produce the same result set,
   the same flag set, and the same fresh-symbol allocations as the scalar
   loop, starting from fresh, identical symbol tables.
3. **Counter invariants and kill switches.**  The ``vec_*`` counters only
   move when the tier is on, and the config knob, the
   ``REPRO_NO_VECTORIZE`` env var, and a missing numpy each turn it off
   (the last with a one-line warning, not an error).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.vectorize as vectorize_module
from repro.analysis.config import AnalysisConfig
from repro.analysis.state import AnalysisContext
from repro.casestudy.scenarios import all_scenarios
from repro.core.mask import Mask
from repro.core.masked import MaskedOps, MaskedSymbol
from repro.core.symbols import SymbolTable
from repro.core.valueset import ValueSet, ValueSetOps
from repro.core.vectorize import (
    HAVE_NUMPY,
    NO_VECTORIZE_ENV,
    VEC_MIN_PAIRS,
    vectorization_enabled,
)
from repro.sweep.runner import execute_scenario
from tests.analysis.test_specialize import MODE_SENSITIVE_METRICS

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector tier requires numpy")

WIDTH = 32


def _comparable_payload(result) -> dict:
    payload = result.to_payload()
    payload["metrics"] = {
        key: value for key, value in payload["metrics"].items()
        if key not in MODE_SENSITIVE_METRICS
    }
    return payload


class TestCatalogueDifferential:
    """Every catalogue scenario, vectorization on vs off."""

    def test_every_scenario_bit_identical(self, monkeypatch):
        mismatches = []
        for name, scenario in sorted(all_scenarios().items()):
            monkeypatch.delenv(NO_VECTORIZE_ENV, raising=False)
            with_tier = _comparable_payload(execute_scenario(scenario))
            monkeypatch.setenv(NO_VECTORIZE_ENV, "1")
            without_tier = _comparable_payload(execute_scenario(scenario))
            if with_tier != without_tier:
                mismatches.append(name)
        assert not mismatches, mismatches

    def test_catalogue_engages_the_tier(self, monkeypatch):
        """The differential above is vacuous unless some scenario actually
        dispatches to the numpy kernels at the fast test geometry."""
        monkeypatch.delenv(NO_VECTORIZE_ENV, raising=False)
        result = execute_scenario(all_scenarios()["aes-O2-64B"])
        assert result.metrics["vec_ops"] > 0
        assert result.metrics["vec_pairs"] >= VEC_MIN_PAIRS


# ----------------------------------------------------------------------
# Random operand sets through both paths
# ----------------------------------------------------------------------

_value = st.integers(min_value=0, max_value=0xFFFFFFFF)
# Sizes chosen so products span the kernel thresholds: all-constant kernels
# engage at 32 pairs, the mixed boolean kernel at 256.
_const_sets = st.tuples(
    st.sets(_value, min_size=8, max_size=24),
    st.sets(_value, min_size=4, max_size=16),
)
_mixed_specs = st.tuples(
    st.lists(st.tuples(_value, _value), min_size=16, max_size=20,
             unique_by=lambda kv: kv),
    st.lists(st.tuples(_value, _value), min_size=16, max_size=20,
             unique_by=lambda kv: kv),
)
_shift_spec = st.tuples(
    st.sets(_value, min_size=8, max_size=24),
    st.sets(st.integers(min_value=0, max_value=31), min_size=4, max_size=8),
)

_BINARY_OPS = ("AND", "OR", "XOR", "ADD")


def _fresh_ops(vectorized: bool) -> ValueSetOps:
    """A fresh table + ops pair; fresh tables allocate symbols in the same
    order, so identical abstract values have identical printed forms."""
    table = SymbolTable(width=WIDTH)
    return ValueSetOps(MaskedOps(table), cap=1024, vectorize=vectorized)


def _mixed_set(ops: ValueSetOps, specs, label: str) -> ValueSet:
    """Half constants, half partially-masked input symbols (value bits are
    forced onto known positions, as the Mask invariant requires)."""
    elements = []
    for index, (known, value) in enumerate(specs):
        if index % 2 == 0:
            elements.append(MaskedSymbol.constant(value, WIDTH))
        else:
            sym = ops.masked.table.input_symbol(f"{label}{index}")
            elements.append(MaskedSymbol(sym, Mask(known, value & known, WIDTH)))
    return ValueSet(elements)


def _rendered(lifted) -> tuple:
    result, flags = lifted
    return result.describe(), tuple(sorted(map(repr, flags)))


@settings(max_examples=30, deadline=None)
@given(sets=_const_sets, op_name=st.sampled_from(_BINARY_OPS))
def test_constant_products_match_scalar(sets, op_name):
    xs, ys = sets
    vec_ops, ref_ops = _fresh_ops(True), _fresh_ops(False)
    x = ValueSet.constants(xs, WIDTH)
    y = ValueSet.constants(ys, WIDTH)
    assert _rendered(vec_ops.apply(op_name, x, y)) == \
        _rendered(ref_ops.apply(op_name, x, y))


@settings(max_examples=30, deadline=None)
@given(specs=_mixed_specs, op_name=st.sampled_from(_BINARY_OPS))
def test_mixed_products_match_scalar(specs, op_name):
    x_specs, y_specs = specs
    vec_lifted = ref_lifted = None
    for vectorized in (True, False):
        ops = _fresh_ops(vectorized)
        x = _mixed_set(ops, x_specs, "x")
        y = _mixed_set(ops, y_specs, "y")
        rendered = _rendered(ops.apply(op_name, x, y))
        if vectorized:
            vec_lifted = rendered
        else:
            ref_lifted = rendered
    assert vec_lifted == ref_lifted


@settings(max_examples=30, deadline=None)
@given(spec=_shift_spec, op_name=st.sampled_from(("SHL", "SHR", "SAR")))
def test_constant_shifts_match_scalar(spec, op_name):
    xs, counts = spec
    vec_ops, ref_ops = _fresh_ops(True), _fresh_ops(False)
    x = ValueSet.constants(xs, WIDTH)
    amounts = ValueSet.constants(counts, WIDTH)
    assert _rendered(vec_ops.shift(op_name, x, amounts)) == \
        _rendered(ref_ops.shift(op_name, x, amounts))


# ----------------------------------------------------------------------
# Counter invariants and kill switches
# ----------------------------------------------------------------------

class TestCountersAndKillSwitches:
    @pytest.fixture(autouse=True)
    def _tier_enabled(self, monkeypatch):
        """These tests choose the mode explicitly; an inherited
        REPRO_NO_VECTORIZE (e.g. a full-suite ablation run) must not
        override the knob under test."""
        monkeypatch.delenv(NO_VECTORIZE_ENV, raising=False)

    def test_counters_move_when_engaged(self):
        ops = _fresh_ops(True)
        x = ValueSet.constants(range(64), WIDTH)
        y = ValueSet.constants(range(100, 108), WIDTH)
        ops.and_(x, y)
        assert ops.vec.ops == 1
        assert ops.vec.pairs == 64 * 8
        assert ops.vec.scalar_pairs == 0

    def test_small_products_stay_scalar(self):
        ops = _fresh_ops(True)
        x = ValueSet.constants(range(4), WIDTH)
        y = ValueSet.constants(range(4), WIDTH)
        ops.and_(x, y)
        assert ops.vec.ops == 0 and ops.vec.pairs == 0

    def test_config_knob_disables_tier(self):
        assert _fresh_ops(False).vec is None
        context = AnalysisContext(AnalysisConfig(vectorize=False))
        assert context.ops.vec is None

    def test_context_wires_the_tier(self):
        context = AnalysisContext(AnalysisConfig())
        assert context.ops.vec is not None

    def test_env_var_disables_tier(self, monkeypatch):
        monkeypatch.setenv(NO_VECTORIZE_ENV, "1")
        context = AnalysisContext(AnalysisConfig())
        assert context.ops.vec is None

    def test_vectorization_enabled_gate(self, monkeypatch):
        assert vectorization_enabled(AnalysisConfig())
        assert not vectorization_enabled(AnalysisConfig(vectorize=False))
        monkeypatch.setenv(NO_VECTORIZE_ENV, "1")
        assert not vectorization_enabled(AnalysisConfig())

    def test_missing_numpy_degrades_with_one_warning(self, monkeypatch, capsys):
        """Without numpy the tier auto-disables: same results via the
        scalar path, one line on stderr, no exception."""
        monkeypatch.setattr(vectorize_module, "HAVE_NUMPY", False)
        monkeypatch.setattr(vectorize_module, "_warned_missing", False)
        assert not vectorization_enabled(AnalysisConfig())
        assert not vectorization_enabled(AnalysisConfig())
        warnings = [line for line in capsys.readouterr().err.splitlines()
                    if "numpy" in line]
        assert len(warnings) == 1
        assert vectorize_module.numpy_version() is None

    def test_over_wide_table_stays_scalar(self):
        """Widths beyond the packed-view format fall back silently."""
        table = SymbolTable(width=64)
        ops = ValueSetOps(MaskedOps(table), cap=1024, vectorize=True)
        assert ops.vec is None
