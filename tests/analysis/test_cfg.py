"""Tests for control-flow reconstruction from binaries."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.isa.asmparse import parse_asm


def build(text):
    return parse_asm(text).assemble()


class TestBasicShapes:
    def test_straight_line(self):
        image = build("""
        .text
        main:
            mov eax, 1
            add eax, 2
            ret
        """)
        cfg = build_cfg(image, "main")
        assert len(cfg.blocks) == 1
        assert cfg.reachable_instructions() == 3
        assert cfg.block_at(cfg.entry).successors == []

    def test_diamond(self):
        image = build("""
        .text
        main:
            test eax, eax
            je .else
            mov ebx, 1
            jmp .join
        .else:
            mov ebx, 2
        .join:
            ret
        """)
        cfg = build_cfg(image, "main")
        entry = cfg.block_at(cfg.entry)
        assert len(entry.successors) == 2
        join_targets = {tuple(cfg.block_at(s).successors) for s in entry.successors}
        # Both arms flow into the same join block.
        joins = {target for targets in join_targets for target in targets}
        assert len(joins) == 1

    def test_loop_backedge(self):
        image = build("""
        .text
        main:
            mov ecx, 10
        .loop:
            dec ecx
            jne .loop
            ret
        """)
        cfg = build_cfg(image, "main")
        edges = cfg.edges()
        backedges = [(src, dst) for src, dst in edges if dst <= src]
        assert backedges

    def test_call_falls_through(self):
        image = build("""
        .text
        main:
            call helper
            ret
        helper:
            ret
        """)
        cfg = build_cfg(image, "main")
        entry = cfg.block_at(cfg.entry)
        # Intra-procedural: the call block flows to the return site.
        assert entry.successors or entry.terminator().mnemonic == "ret"

    def test_budget(self):
        image = build("""
        .text
        main:
            ret
        """)
        with pytest.raises(ValueError):
            build_cfg(image, "main", max_instructions=0)


class TestBlocksTouched:
    def test_single_line(self):
        image = build("""
        .text
        .align 64
        main:
            nop
            nop
            ret
        """)
        cfg = build_cfg(image, "main")
        blocks = cfg.block_at(cfg.entry).blocks_touched(line_bytes=64)
        assert len(blocks) == 1

    def test_straddles_lines(self):
        image = build("""
        .text
        .align 64
        main:
        """ + "    nop\n" * 70 + """
            ret
        """)
        cfg = build_cfg(image, "main")
        blocks = cfg.block_at(cfg.entry).blocks_touched(line_bytes=64)
        assert len(blocks) == 2

    def test_compiled_kernel_cfg(self):
        """CFG reconstruction handles the case-study binaries."""
        from repro.casestudy import targets

        target = targets.lookup_target()
        cfg = build_cfg(target.image, target.spec.entry)
        assert len(cfg.blocks) >= 3  # entry, arms, join/epilogue
        assert cfg.reachable_instructions() > 10
