"""Tests for the concrete validation harness itself."""

import pytest

from repro.analysis.analyzer import analyze
from repro.analysis.config import AnalysisConfig, AnalysisError, ArgInit, InputSpec, MemInit
from repro.analysis.validation import ConcreteValidator
from repro.core.leakage import ObservationBound
from repro.core.observers import AccessKind
from repro.isa.asmparse import parse_asm
from repro.isa.registers import EAX, ESI

CONFIG = AnalysisConfig(observer_names=("address", "block"))


def build(text):
    return parse_asm(text).assemble()


SECRET_BRANCH = """
.text
main:
    test eax, eax
    je .skip
    add esi, 64
.skip:
    mov ebx, [esi]
    ret
"""


class TestViews:
    def test_view_count_matches_secret_structure(self):
        image = build(SECRET_BRANCH)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_high(EAX, [0, 1]),
                                    InputSpec.reg_symbol(ESI, "p")))
        validator = ConcreteValidator(image, spec)
        views = validator.views({"p": 0x9000000}, "D", offset_bits=0)
        assert len(views) == 2  # one per secret

    def test_views_identical_for_branchless(self):
        image = build("""
        .text
        main:
            add eax, 1
            mov ebx, [esi]
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_high(EAX, [0, 1, 2, 3]),
                                    InputSpec.reg_symbol(ESI, "p")))
        validator = ConcreteValidator(image, spec)
        assert len(validator.views({"p": 0x9000000}, "D", 0)) == 1
        assert len(validator.views({"p": 0x9000000}, "I", 0)) == 1

    def test_stuttering_views(self):
        image = build("""
        .text
        main:
            mov ebx, [esi]
            mov ecx, [esi+4]
            ret
        """)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_symbol(ESI, "p"),))
        validator = ConcreteValidator(image, spec)
        exact = next(iter(validator.views({"p": 0x9000000}, "D", 6)))
        collapsed = next(iter(validator.views({"p": 0x9000000}, "D", 6, True)))
        assert len(collapsed) <= len(exact)

    def test_missing_lambda_raises(self):
        image = build(SECRET_BRANCH)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_symbol(ESI, "p"),))
        validator = ConcreteValidator(image, spec)
        with pytest.raises(AnalysisError):
            validator.views({}, "D", 0)

    def test_memory_secrets_enumerated(self):
        image = build("""
        .text
        main:
            mov eax, [esi]
            lea edx, [eax*4]
            mov ebx, [esi+edx]
            ret
        """)
        spec = InputSpec(
            entry="main",
            registers=(InputSpec.reg_symbol(ESI, "p"),),
            memory=(MemInit(at="p", high_values=(1, 2, 3)),),
        )
        validator = ConcreteValidator(image, spec)
        views = validator.views({"p": 0x9000000}, "D", 0)
        assert len(views) == 3

    def test_arg_secrets_enumerated(self):
        image = build("""
        .text
        main:
            mov eax, [esp+4]
            lea edx, [eax*4]
            mov ebx, [esi+edx]
            ret
        """)
        spec = InputSpec(
            entry="main",
            registers=(InputSpec.reg_symbol(ESI, "p"),),
            args=(ArgInit.high([0, 1, 2]),),
        )
        validator = ConcreteValidator(image, spec)
        views = validator.views({"p": 0x9000000}, "D", 0)
        assert len(views) == 3


class TestCheck:
    def _result(self):
        image = build(SECRET_BRANCH)
        spec = InputSpec(entry="main",
                         registers=(InputSpec.reg_high(EAX, [0, 1]),
                                    InputSpec.reg_symbol(ESI, "p")))
        return image, spec, analyze(image, spec, CONFIG)

    def test_valid_bounds_pass(self):
        image, spec, result = self._result()
        outcome = ConcreteValidator(image, spec).check(
            result, layouts=[{"p": 0x9000000}, {"p": 0x9000404}])
        assert outcome.ok
        assert outcome.checked == 2 * 2 * 2 * 2  # layouts x kinds x obs x stutter

    def test_violation_detected(self):
        """Corrupting a bound must be caught (the validator actually bites)."""
        image, spec, result = self._result()
        bad = ObservationBound(kind=AccessKind.DATA, observer="address",
                               count=1, stuttering_count=1)
        result.report.record(bad)
        outcome = ConcreteValidator(image, spec).check(
            result, layouts=[{"p": 0x9000000}])
        assert not outcome.ok
        assert any("D-Cache/address" in v for v in outcome.violations)
