"""The heapq worklist engine: scheduler statistics, the no-full-sort
guarantee, and per-(observer, kind) projection routing in ``_emit``."""

import inspect

from repro.analysis.analyzer import analyze
from repro.analysis.config import AnalysisConfig, InputSpec
from repro.analysis.engine import Engine
from repro.casestudy import targets
from repro.core.observers import AccessKind, CacheGeometry
from repro.isa import parse_asm
from repro.isa.registers import EAX, ESI

I, D, S = AccessKind.INSTRUCTION, AccessKind.DATA, AccessKind.SHARED


class TestSchedulerStats:
    def test_stats_recorded_on_result(self):
        result = targets.sqam_target().analyze()
        scheduler = result.engine_result.scheduler
        assert scheduler.peak_heap_size >= 1
        assert scheduler.decode_hits + scheduler.decode_misses == result.engine_result.steps
        assert 0.0 <= scheduler.decode_cache_hit_rate <= 1.0
        assert 0.0 <= scheduler.lift_memo_hit_rate <= 1.0
        assert 0.0 <= scheduler.projection_cache_hit_rate <= 1.0

    def test_loops_hit_the_decode_and_lift_caches(self):
        """Kernels with loops re-decode and re-lift the same work: the
        caches must be doing the bulk of it."""
        result = targets.gather_target(nbytes=32).analyze()
        scheduler = result.engine_result.scheduler
        assert scheduler.decode_cache_hit_rate > 0.5
        assert scheduler.lift_memo_hit_rate > 0.3
        assert scheduler.projection_cache_hit_rate > 0.5

    def test_engine_performs_no_full_sorts(self):
        result = targets.lookup_target().analyze()
        assert result.engine_result.scheduler.full_sorts == 0
        # Belt and braces: the scheduler loop must not contain a list sort
        # or a front-of-list pop (the seed's O(n log n)-per-step pattern).
        source = inspect.getsource(Engine.run)
        assert ".sort(" not in source
        assert "pop(0)" not in source

    def test_merge_and_fork_counts_survive(self):
        """The worklist refactor keeps the merge/fork accounting."""
        result = targets.sqam_target().analyze()
        engine_result = result.engine_result
        assert engine_result.forks >= 1    # the secret-dependent branch
        assert engine_result.merges >= 1   # both arms rejoin
        assert engine_result.max_configs >= 2

    def test_reused_engine_keeps_per_run_stats(self):
        """A second run() must not accumulate into the first run's stats."""
        from repro.analysis.analyzer import build_initial_state
        from repro.analysis.state import AnalysisContext
        from repro.analysis.transfer import Transfer

        target = targets.sqm_target()
        context = AnalysisContext(target.config)
        transfer = Transfer(context, target.image)
        engine = Engine(target.image, context, transfer)
        entry = target.image.symbol(target.spec.entry)

        state_one, _ = build_initial_state(context, target.spec, target.image)
        first = engine.run(entry, state_one)
        first_decodes = first.scheduler.decode_hits + first.scheduler.decode_misses

        state_two, _ = build_initial_state(context, target.spec, target.image)
        second = engine.run(entry, state_two)

        assert first.scheduler is not second.scheduler
        assert first_decodes == first.scheduler.decode_hits + first.scheduler.decode_misses
        assert (second.scheduler.decode_hits + second.scheduler.decode_misses
                == second.steps)


class TestEmitProjections:
    """Secret-dependent access, observed by several kinds and observers."""

    PROGRAM = """
    .text
    main:
        test eax, eax
        je .skip
        add esi, 64
    .skip:
        mov ebx, [esi]
        ret
    """

    BASE = 0x080E_B000  # page-aligned data address (known to the analysis)

    def _analyze(self, observers=("address", "block", "page"),
                 kinds=(I, D, S), line_bytes=64):
        image = parse_asm(self.PROGRAM).assemble()
        spec = InputSpec(
            entry="main",
            registers=(InputSpec.reg_high(EAX, [0, 1]),
                       InputSpec.reg_constant(ESI, self.BASE)),
        )
        config = AnalysisConfig(
            geometry=CacheGeometry(line_bytes=line_bytes),
            observer_names=observers, kinds=kinds)
        return analyze(image, spec, config)

    def test_each_observer_gets_its_own_projection(self):
        """A 64-byte secret-dependent stride distinguishes the address and
        block observers (1 bit) but not the page observer (0 bits): each
        (kind, observer) DAG must have been fed the projection for *its*
        offset_bits, never a reused one."""
        result = self._analyze()
        assert result.report.bits(D, "address") == 1.0
        assert result.report.bits(D, "block") == 1.0
        assert result.report.bits(D, "page") == 0.0

    def test_shared_kind_sees_same_projection_per_observer(self):
        """SHARED merges the I- and D-streams under one observer: its count
        can never be below either split stream's count for that observer."""
        result = self._analyze()
        for observer in ("address", "block", "page"):
            shared = result.report.bound(S, observer).count
            assert shared >= result.report.bound(D, observer).count

    def test_data_vs_shared_divergence_when_offsets_differ(self):
        """Regression for the label-reuse short circuit: with a *different*
        blinding per observer, the DATA projections must differ across
        observers even though one address set feeds all of them."""
        fine = self._analyze(observers=("address",), kinds=(D,))
        coarse = self._analyze(observers=("page",), kinds=(D,))
        assert fine.report.bits(D, "address") == 1.0
        assert coarse.report.bits(D, "page") == 0.0
