"""The span tracer: disabled-mode overhead, buffers, and Chrome export."""

import json

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracer_off(monkeypatch):
    """Every test starts and ends with tracing disabled and a clean buffer."""
    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    trace.stop()
    yield
    trace.stop()


class TestDisabledMode:
    def test_span_returns_the_shared_null_singleton(self):
        assert trace.span("phase") is trace.NULL_SPAN
        assert trace.span("other", detail=1) is trace.NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with trace.span("phase") as span:
            span.arg("key", "value")  # must not raise, must not record
        assert trace.drain() == []

    def test_instant_and_counter_are_noops(self):
        trace.instant("marker", detail=1)
        trace.counter("track", {"value": 2})
        assert trace.drain() == []

    def test_no_span_objects_allocated_during_a_full_analysis(self, monkeypatch):
        """The overhead guard: with tracing off, a complete engine run must
        never construct a Span — every call site goes through the shared
        NULL_SPAN.  A Span constructor bomb proves it."""
        from repro.casestudy.scenarios import sqm_scenario
        from repro.sweep.runner import execute_scenario

        def bomb(*args, **kwargs):
            raise AssertionError("Span allocated while tracing is disabled")

        monkeypatch.setattr(trace, "Span", bomb)
        assert not trace.enabled()
        result = execute_scenario(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.rows
        assert result.timeline == ()  # sampling rides the tracing switch


class TestEnabledMode:
    def test_span_records_a_complete_event(self):
        trace.start()
        with trace.span("phase", detail=7) as span:
            span.arg("late", "yes")
        (event,) = trace.drain()
        assert event["name"] == "phase"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"detail": 7, "late": "yes"}
        assert isinstance(event["pid"], int)

    def test_nested_spans_both_record(self):
        trace.start()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        names = [event["name"] for event in trace.drain()]
        assert names == ["inner", "outer"]  # inner exits first

    def test_start_is_idempotent_and_stop_drains(self):
        tracer = trace.start()
        assert trace.start() is tracer
        trace.instant("marker")
        assert len(trace.stop()) == 1
        assert not trace.enabled()

    def test_reset_clears_without_disabling(self):
        trace.start()
        trace.instant("inherited-from-parent")
        trace.reset()
        assert trace.enabled()
        assert trace.drain() == []


class TestExport:
    def test_export_shape_and_rebasing(self):
        trace.start()
        with trace.span("phase"):
            pass
        trace.counter("track", {"value": 3})
        payload = trace.export()
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(metadata) == 1 and len(spans) == 1 and len(counters) == 1
        assert metadata[0]["name"] == "process_name"
        assert metadata[0]["args"]["name"] == "repro"
        # Timestamps are rebased to the earliest event and in microseconds.
        assert min(e["ts"] for e in spans + counters) == 0.0
        assert spans[0]["dur"] >= 0.0

    def test_export_stitches_adopted_foreign_pid_events(self):
        trace.start()
        with trace.span("parent-phase"):
            pass
        foreign = {"name": "worker-phase", "ph": "X", "ts": 5, "dur": 2,
                   "pid": 999_999, "tid": 1}
        trace.adopt([foreign])
        payload = trace.export()
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert 999_999 in pids and len(pids) == 2
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"repro", "repro worker"}

    def test_write_roundtrips_through_json(self, tmp_path):
        trace.start()
        with trace.span("phase"):
            pass
        path = tmp_path / "trace.json"
        written = trace.write(path)
        assert json.loads(path.read_text()) == written

    def test_env_var_enables_at_import(self, monkeypatch):
        """Pool workers inherit REPRO_TRACE; a re-import honors it."""
        monkeypatch.setenv(trace.TRACE_ENV, "1")
        import importlib

        module = importlib.reload(trace)
        try:
            assert module.enabled()
        finally:
            module.stop()
