"""The metrics registry: kinds, snapshots, deltas, and publishers."""

import pytest

from repro.obs import metrics


class TestRegistry:
    def test_counter_accumulates(self):
        registry = metrics.MetricsRegistry()
        registry.inc("engine.steps", 5)
        registry.inc("engine.steps", 2)
        assert registry.counter("engine.steps").value == 7

    def test_gauge_overwrites(self):
        registry = metrics.MetricsRegistry()
        registry.set("intern.size", 10)
        registry.set("intern.size", 3)
        assert registry.gauge("intern.size").value == 3

    def test_histogram_tracks_count_total_min_max(self):
        registry = metrics.MetricsRegistry()
        for value in (4.0, 1.0, 9.0):
            registry.observe("elapsed", value)
        histogram = registry.histogram("elapsed")
        assert histogram.count == 3
        assert histogram.total == 14.0
        assert histogram.min == 1.0 and histogram.max == 9.0
        assert histogram.mean == pytest.approx(14.0 / 3)

    def test_kind_mismatch_raises(self):
        registry = metrics.MetricsRegistry()
        registry.inc("name")
        with pytest.raises(TypeError):
            registry.set("name", 1)

    def test_snapshot_is_sorted_and_flat(self):
        registry = metrics.MetricsRegistry()
        registry.set("b.gauge", 2)
        registry.inc("a.counter", 1)
        registry.observe("c.hist", 5.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["a.counter"] == 1
        assert snapshot["b.gauge"] == 2
        assert snapshot["c.hist.count"] == 1
        assert snapshot["c.hist.total"] == 5.0
        assert all(isinstance(value, (int, float))
                   for value in snapshot.values())

    def test_snapshots_of_identical_histories_are_identical(self):
        def build():
            registry = metrics.MetricsRegistry()
            registry.inc("z", 3)
            registry.set("a", 1)
            registry.observe("m", 2.0)
            return registry.snapshot()

        assert build() == build()


class TestDelta:
    def test_delta_subtracts_keywise(self):
        base = {"a": 1, "b": 5}
        current = {"a": 4, "c": 2}
        assert metrics.delta(current, base) == {"a": 3, "b": -5, "c": 2}

    def test_delta_of_equal_snapshots_is_zero(self):
        snapshot = {"a": 1.5, "b": 2}
        assert all(value == 0
                   for value in metrics.delta(snapshot, snapshot).values())


class TestPublishers:
    def test_scheduler_stats_publish_as_counter_increments(self):
        from repro.analysis.engine import SchedulerStats

        registry = metrics.MetricsRegistry()
        stats = SchedulerStats(peak_heap_size=3, decode_hits=10)
        metrics.publish_scheduler_stats(stats, into=registry)
        metrics.publish_scheduler_stats(stats, into=registry)
        snapshot = registry.snapshot()
        assert snapshot["engine.peak_heap_size"] == 6  # accumulated
        assert snapshot["engine.decode_hits"] == 20
        assert "engine.interp_steps" in snapshot

    def test_pull_domain_metrics_mirrors_intern_and_caches(self):
        from repro.core.valueset import ValueSet, intern_size

        ValueSet.constant(0x1234, 32)  # make sure the table is non-trivial
        registry = metrics.pull_domain_metrics(into=metrics.MetricsRegistry())
        snapshot = registry.snapshot()
        assert snapshot["intern.valueset.size"] == intern_size()
        for name in ("intern.valueset.hits", "intern.masked.size",
                     "cache.specialized_programs.hits",
                     "cache.compiled_images.size"):
            assert name in snapshot

    def test_pull_domain_metrics_mirrors_cache_maintenance_counters(self):
        from repro.vm.cache import (
            CacheHierarchy,
            cache_counters,
            default_hierarchy_spec,
            reset_cache_counters,
        )

        reset_cache_counters()
        hierarchy = CacheHierarchy(default_hierarchy_spec())
        for block in range(256):
            hierarchy.access(block * 64, core=block % 2, write=block % 3 == 0)
        hierarchy.flush()
        snapshot = metrics.pull_domain_metrics(
            into=metrics.MetricsRegistry()).snapshot()
        totals = cache_counters()
        for key in ("evictions", "back_invalidations", "writebacks",
                    "flushes"):
            assert snapshot[f"vm.cache.{key}"] == totals[key]
        assert snapshot["vm.cache.evictions"] > 0
        assert snapshot["vm.cache.flushes"] == 3

    def test_engine_run_publishes_into_the_global_registry(self):
        from repro.casestudy.scenarios import sqm_scenario
        from repro.sweep.runner import execute_scenario

        before = metrics.registry().snapshot().get("engine.decode_misses", 0)
        execute_scenario(sqm_scenario(opt_level=2, line_bytes=64))
        after = metrics.registry().snapshot()["engine.decode_misses"]
        assert after >= before  # accumulates across runs, never resets

    def test_vm_perf_counters_publish(self):
        from repro.vm.perf import PerfCounters

        registry = metrics.MetricsRegistry()
        counters = PerfCounters()
        counters.instructions = 7
        counters.publish(registry=registry, prefix="vm")
        assert registry.snapshot()["vm.instructions"] == 7
