"""Timeline sampling, RSS/GC probes, and the engine's sampling cadence."""

import gc

import pytest

from repro.obs import timeline, trace


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    monkeypatch.delenv(timeline.TIMELINE_STEPS_ENV, raising=False)
    trace.stop()
    timeline.end()
    yield
    trace.stop()
    timeline.end()


class TestProbes:
    def test_peak_rss_is_positive_on_posix(self):
        assert timeline.peak_rss_bytes() > 1_000_000  # a Python process

    def test_gc_pauses_total_collector_time(self):
        gc_was_enabled = gc.isenabled()
        gc.enable()
        try:
            with timeline.GCPauses() as pauses:
                for _ in range(3):
                    gc.collect()
            assert pauses.collections >= 3
            assert pauses.total_s >= 0.0
        finally:
            if not gc_was_enabled:
                gc.disable()

    def test_gc_callback_removed_on_exit(self):
        with timeline.GCPauses() as pauses:
            assert pauses._callback in gc.callbacks
        assert pauses._callback not in gc.callbacks


class TestSampler:
    def test_begin_installs_nothing_when_tracing_is_off(self):
        assert timeline.begin("label") is None
        assert timeline.active() is None
        assert timeline.end() == []

    def test_begin_installs_when_tracing_is_on(self):
        trace.start()
        sampler = timeline.begin("label")
        assert sampler is not None and timeline.active() is sampler
        assert sampler.next_due == 0  # first sample fires immediately

    def test_sample_fields_and_cadence(self):
        trace.start()
        sampler = timeline.begin("label")
        sampler.sample(steps=0, heap=4, pending=2)
        sampler.sample(steps=sampler.interval, heap=1, pending=0)
        assert len(sampler.samples) == 2
        first = sampler.samples[0]
        assert first["steps"] == 0 and first["heap"] == 4
        for key in ("elapsed_s", "steps_per_s", "pending", "vs_interned",
                    "sym_interned", "rss_bytes"):
            assert key in first
        assert sampler.next_due == 2 * sampler.interval
        # Samples mirror into the trace as Chrome counter events.
        counters = [e for e in trace.drain() if e["ph"] == "C"]
        assert len(counters) == 2
        assert counters[0]["name"] == "timeline.label"

    def test_cadence_env_override(self, monkeypatch):
        monkeypatch.setenv(timeline.TIMELINE_STEPS_ENV, "123")
        trace.start()
        sampler = timeline.begin("label")
        assert sampler.interval == 123

    def test_end_pops_the_sampler(self):
        trace.start()
        sampler = timeline.begin("label")
        sampler.sample(steps=0, heap=0, pending=0)
        samples = timeline.end()
        assert len(samples) == 1
        assert timeline.active() is None


class TestEngineIntegration:
    def test_traced_run_attaches_timeline_samples(self, monkeypatch):
        """A traced scenario run samples at step 0 and at run end (at
        least), on the deterministic step-count cadence."""
        from repro.casestudy.scenarios import sqm_scenario
        from repro.sweep.runner import execute_scenario

        monkeypatch.setenv(timeline.TIMELINE_STEPS_ENV, "50")
        trace.start()
        result = execute_scenario(sqm_scenario(opt_level=2, line_bytes=64))
        trace.drain()
        assert len(result.timeline) >= 2
        steps = [sample["steps"] for sample in result.timeline]
        assert steps == sorted(steps)
        assert steps[0] == 0
        assert steps[-1] == result.metrics["steps"]
