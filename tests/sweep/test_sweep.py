"""The sweep subsystem: scenarios, runner, caches, store, and the
figure-level bit-identity regression against the seed reproduction."""

import json
import multiprocessing

import pytest

from repro.casestudy import experiments
from repro.casestudy.scenarios import (
    all_scenarios,
    figure_scenarios,
    gather_scenario,
    kernel_scenario,
    lookup_scenario,
    sqam_scenario,
    sqm_scenario,
)
from repro.core.observers import AccessKind
from repro.sweep import (
    Scenario,
    ScenarioError,
    SweepResult,
    SweepRunner,
    execute_scenario,
)

I, D = AccessKind.INSTRUCTION, AccessKind.DATA


class TestScenario:
    def test_fingerprint_stable_and_name_blind(self):
        a = sqm_scenario(opt_level=2, line_bytes=64)
        b = Scenario.make("another-alias", a.target, opt_level=2, line_bytes=64)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sensitive_to_params_and_overrides(self):
        base = sqam_scenario(opt_level=2, line_bytes=64)
        assert base.fingerprint() != sqam_scenario(opt_level=0,
                                                   line_bytes=64).fingerprint()
        assert base.fingerprint() != sqam_scenario(
            opt_level=2, line_bytes=64,
            observers=("address", "block")).fingerprint()

    def test_payload_roundtrip(self):
        scenario = lookup_scenario(opt_level=1, observers=("address", "block"),
                                   kinds=("INSTRUCTION", "DATA"))
        clone = Scenario.from_payload(
            json.loads(json.dumps(scenario.to_payload())))
        assert clone == scenario
        assert clone.fingerprint() == scenario.fingerprint()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ScenarioError):
            Scenario(name="x", target="a.b:c", kind="nope")

    def test_config_overrides_reach_the_analysis(self):
        narrowed = execute_scenario(
            sqm_scenario(opt_level=2, line_bytes=64,
                         observers=("address",), kinds=("DATA",)))
        assert {(row.kind, row.observer) for row in narrowed.rows} == {
            ("DATA", "address")
        }


class TestRunnerCaching:
    def test_in_process_cache_hits(self):
        runner = SweepRunner()
        first = runner.run_one(sqam_scenario(opt_level=2, line_bytes=64))
        second = runner.run_one(sqam_scenario(opt_level=2, line_bytes=64))
        assert not first.cached
        assert second.cached
        assert second.rows == first.rows

    def test_batch_alias_dedup(self):
        runner = SweepRunner()
        figure = figure_scenarios()["figure7a"]
        grid = sqm_scenario(opt_level=2, line_bytes=64)
        results = runner.run([figure, grid])
        assert [result.scenario for result in results] == [figure.name, grid.name]
        assert results[0].rows == results[1].rows
        assert results[1].cached  # second alias shared the first run

    def test_disk_store_roundtrip(self, tmp_path):
        store_path = str(tmp_path / "store.json")
        scenario = gather_scenario(nbytes=16)
        first = SweepRunner(store=store_path).run_one(scenario)
        assert not first.cached
        # A fresh runner (fresh in-process cache) reads the store instead.
        second = SweepRunner(store=store_path).run_one(scenario)
        assert second.cached
        assert second.rows == first.rows
        assert second.report.bits(D, "block") == 0.0

    def test_store_is_deterministic(self, tmp_path):
        scenarios = [sqm_scenario(opt_level=2, line_bytes=64),
                     sqam_scenario(opt_level=0, line_bytes=32),
                     kernel_scenario("scatter_102f", 16)]
        paths = []
        for round_index in (0, 1):
            path = tmp_path / f"store{round_index}.json"
            SweepRunner(store=str(path)).run(scenarios)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestPoolParallelism:
    def test_multi_scenario_pool_sweep(self, tmp_path):
        """≥8 scenarios through the process pool, deterministic store."""
        catalogue = all_scenarios(entry_bytes=16, nlimbs=4)
        scenarios = list(catalogue.values())
        assert len(scenarios) >= 8
        store_path = tmp_path / "pool_store.json"
        workers = max(2, min(4, multiprocessing.cpu_count()))
        runner = SweepRunner(processes=workers, store=str(store_path))

        results = runner.run(scenarios)
        assert len(results) == len(scenarios)
        by_name = {result.scenario: result for result in results}
        assert by_name["figure7b"].report.bits(D, "address") == 0.0
        assert by_name["figure14c"].report.bits(D, "block") == 0.0
        assert by_name["kernel-scatter_102f-16B"].metrics["instructions"] > 0

        # The pooled store matches an inline run's store byte for byte.
        inline_path = tmp_path / "inline_store.json"
        SweepRunner(processes=1, store=str(inline_path)).run(scenarios)
        assert store_path.read_bytes() == inline_path.read_bytes()


class TestFigureRegression:
    """Measured observation counts must stay bit-identical to the seed.

    The expectations below were captured from the seed revision (before the
    worklist/caching refactor); any engine or sweep change that alters a
    count is a regression even if the bits still round to the paper's
    numbers.
    """

    SEED_COUNTS = {
        # (figure, kind, observer) -> (count, stuttering_count)
        ("figure7a", "I-Cache", "address"): (2, 2),
        ("figure7a", "I-Cache", "block"): (2, 2),
        ("figure7a", "D-Cache", "address"): (2, 2),
        ("figure7a", "D-Cache", "block"): (2, 2),
        ("figure7b", "I-Cache", "address"): (2, 2),
        ("figure7b", "I-Cache", "block"): (2, 1),
        ("figure7b", "D-Cache", "address"): (1, 1),
        ("figure7b", "D-Cache", "block"): (1, 1),
        ("figure8", "I-Cache", "block"): (2, 2),
        ("figure8", "D-Cache", "block"): (2, 2),
        ("figure14a", "I-Cache", "address"): (2, 2),
        ("figure14a", "D-Cache", "address"): (50, 50),
        ("figure14a", "D-Cache", "bank"): (50, 50),
        ("figure14a", "D-Cache", "block"): (5, 5),
        ("figure14b", "D-Cache", "address"): (1, 1),
        ("figure14b", "I-Cache", "address"): (1, 1),
        ("figure14c", "D-Cache", "address"): (8 ** 32, 8 ** 32),
        ("figure14c", "D-Cache", "bank"): (2 ** 32, 2 ** 32),
        ("figure14c", "D-Cache", "block"): (1, 1),
        ("figure14c", "I-Cache", "address"): (1, 1),
        ("figure14d", "D-Cache", "address"): (1, 1),
        ("figure14d", "D-Cache", "bank"): (1, 1),
        ("figure14d", "I-Cache", "address"): (1, 1),
    }

    KIND_OF = {"I-Cache": I, "D-Cache": D}

    @pytest.fixture(scope="class")
    def figures(self):
        return {
            "figure7a": experiments.figure7a(),
            "figure7b": experiments.figure7b(),
            "figure8": experiments.figure8(),
            "figure14a": experiments.figure14a(),
            "figure14b": experiments.figure14b(nlimbs=8),
            "figure14c": experiments.figure14c(nbytes=32),
            "figure14d": experiments.figure14d(nbytes=16),
        }

    def test_counts_bit_identical_to_seed(self, figures):
        mismatches = []
        for (figure, cache, observer), expected in self.SEED_COUNTS.items():
            report = figures[figure].analysis.report
            bound = report.bound(self.KIND_OF[cache], observer)
            measured = (bound.count, bound.stuttering_count)
            if measured != expected:
                mismatches.append((figure, cache, observer, measured, expected))
        assert not mismatches, mismatches

    def test_all_figures_match_paper(self, figures):
        for name, figure in figures.items():
            assert figure.all_match, f"{name}: {figure.format()}"

    def test_figure_results_survive_serialization(self, figures):
        """The SweepResult carried by a figure reconstructs its report."""
        for figure in figures.values():
            sweep = figure.analysis
            clone = SweepResult.from_payload(
                json.loads(json.dumps(sweep.to_payload())))
            assert clone.rows == sweep.rows
            assert clone.report.bounds.keys() == sweep.report.bounds.keys()
