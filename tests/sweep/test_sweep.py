"""The sweep subsystem: scenarios, runner, caches, store, and the
figure-level bit-identity regression against the seed reproduction."""

import json
import multiprocessing

import pytest

from repro.casestudy import experiments
from repro.casestudy.scenarios import (
    POLICY_NAMES,
    adversary_scenario,
    all_scenarios,
    figure_scenarios,
    gather_scenario,
    kernel_scenario,
    lookup_scenario,
    policy_adversary_scenarios,
    sqam_scenario,
    sqm_scenario,
)
from repro.core.observers import AccessKind
from repro.sweep import (
    ResultStore,
    Scenario,
    ScenarioError,
    SweepResult,
    SweepRunner,
    execute_scenario,
)

I, D = AccessKind.INSTRUCTION, AccessKind.DATA


class TestScenario:
    def test_fingerprint_stable_and_name_blind(self):
        a = sqm_scenario(opt_level=2, line_bytes=64)
        b = Scenario.make("another-alias", a.target, opt_level=2, line_bytes=64)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_sensitive_to_params_and_overrides(self):
        base = sqam_scenario(opt_level=2, line_bytes=64)
        assert base.fingerprint() != sqam_scenario(opt_level=0,
                                                   line_bytes=64).fingerprint()
        assert base.fingerprint() != sqam_scenario(
            opt_level=2, line_bytes=64,
            observers=("address", "block")).fingerprint()

    def test_payload_roundtrip(self):
        scenario = lookup_scenario(opt_level=1, observers=("address", "block"),
                                   kinds=("INSTRUCTION", "DATA"))
        clone = Scenario.from_payload(
            json.loads(json.dumps(scenario.to_payload())))
        assert clone == scenario
        assert clone.fingerprint() == scenario.fingerprint()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ScenarioError):
            Scenario(name="x", target="a.b:c", kind="nope")

    def test_config_overrides_reach_the_analysis(self):
        narrowed = execute_scenario(
            sqm_scenario(opt_level=2, line_bytes=64,
                         observers=("address",), kinds=("DATA",)))
        assert {(row.kind, row.observer) for row in narrowed.rows} == {
            ("DATA", "address")
        }


class TestRunnerCaching:
    def test_in_process_cache_hits(self):
        runner = SweepRunner()
        first = runner.run_one(sqam_scenario(opt_level=2, line_bytes=64))
        second = runner.run_one(sqam_scenario(opt_level=2, line_bytes=64))
        assert not first.cached
        assert second.cached
        assert second.rows == first.rows

    def test_batch_alias_dedup(self):
        runner = SweepRunner()
        figure = figure_scenarios()["figure7a"]
        grid = sqm_scenario(opt_level=2, line_bytes=64)
        results = runner.run([figure, grid])
        assert [result.scenario for result in results] == [figure.name, grid.name]
        assert results[0].rows == results[1].rows
        assert results[1].cached  # second alias shared the first run

    def test_disk_store_roundtrip(self, tmp_path):
        store_path = str(tmp_path / "store.json")
        scenario = gather_scenario(nbytes=16)
        first = SweepRunner(store=store_path).run_one(scenario)
        assert not first.cached
        # A fresh runner (fresh in-process cache) reads the store instead.
        second = SweepRunner(store=store_path).run_one(scenario)
        assert second.cached
        assert second.rows == first.rows
        assert second.report.bits(D, "block") == 0.0

    def test_store_is_deterministic(self, tmp_path):
        scenarios = [sqm_scenario(opt_level=2, line_bytes=64),
                     sqam_scenario(opt_level=0, line_bytes=32),
                     kernel_scenario("scatter_102f", 16)]
        paths = []
        for round_index in (0, 1):
            path = tmp_path / f"store{round_index}.json"
            SweepRunner(store=str(path)).run(scenarios)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestResultStoreRobustness:
    """The on-disk store under fingerprint churn and file corruption."""

    def test_fingerprint_change_invalidates(self, tmp_path):
        """A changed scenario meaning misses the cache and recomputes."""
        store_path = str(tmp_path / "store.json")
        base = gather_scenario(nbytes=16)
        first = SweepRunner(store=store_path).run_one(base)
        assert not first.cached
        changed = gather_scenario(nbytes=16, observers=("address", "block"))
        assert changed.fingerprint() != base.fingerprint()
        second = SweepRunner(store=store_path).run_one(changed)
        assert not second.cached  # new fingerprint: no stale answer
        # Both results are now stored under their own fingerprints.
        store = ResultStore(store_path)
        assert store.get(base.fingerprint()) is not None
        assert store.get(changed.fingerprint()) is not None
        assert len(store) == 2

    def test_policy_and_adversary_overrides_key_fingerprints(self):
        base = lookup_scenario(opt_level=2, line_bytes=64)
        fingerprints = {base.fingerprint()}
        for policy in POLICY_NAMES:
            fingerprints.add(adversary_scenario(base, policy).fingerprint())
        fingerprints.add(adversary_scenario(base, "lru", models=()).fingerprint())
        assert len(fingerprints) == 5  # base + 3 policies + ablation

    @pytest.mark.parametrize("content", [
        "",                                  # truncated to nothing
        "{\"version\": 1, \"results\": ",    # truncated mid-object
        "not json at all {{{",               # garbage
        "[1, 2, 3]",                         # wrong shape
        "{\"version\": 999, \"results\": {}}",  # incompatible version
    ])
    def test_corrupt_store_starts_fresh(self, tmp_path, content):
        store_path = tmp_path / "store.json"
        store_path.write_text(content)
        store = ResultStore(str(store_path))
        assert len(store) == 0
        scenario = gather_scenario(nbytes=16)
        result = SweepRunner(store=str(store_path)).run_one(scenario)
        assert not result.cached
        # The save overwrote the corrupt file with a loadable store.
        recovered = ResultStore(str(store_path))
        assert recovered.get(scenario.fingerprint()) is not None

    def test_corrupt_store_does_not_crash_sweep(self, tmp_path):
        store_path = tmp_path / "store.json"
        store_path.write_text("\x00\x01 binary junk")
        runner = SweepRunner(store=str(store_path))
        results = runner.run([gather_scenario(nbytes=16)])
        assert len(results) == 1 and results[0].rows


class TestPolicyAdversaryGrid:
    """The policy × adversary scenario axis of the catalogue."""

    @pytest.fixture(scope="class")
    def grid_results(self):
        runner = SweepRunner()
        grid = policy_adversary_scenarios(entry_bytes=16)
        return {name: runner.run_one(scenario)
                for name, scenario in grid.items()}

    def test_grid_is_in_the_catalogue(self):
        catalogue = all_scenarios(entry_bytes=16)
        for name in policy_adversary_scenarios(entry_bytes=16):
            assert name in catalogue

    def test_leakage_rows_policy_independent(self, grid_results):
        """Rows agree across the policy axis.

        Today this holds by construction — the analysis never consults
        ``cache_policy`` — and this test locks that invariant: a future
        change that makes ``analyze()`` policy-sensitive must not alter the
        observation counts.  The *executable* policy-independence argument
        (hit/miss replays under each policy stay within the bounds) lives
        in ``tests/core/test_adversary.py``'s concrete-validation tests.
        """
        for base in ("sqam-O2-64B", "lookup-O2-64B", "gather-16B"):
            rows = {grid_results[f"{base}-{policy}"].rows
                    for policy in POLICY_NAMES}
            adversary_rows = {grid_results[f"{base}-{policy}"].adversary_rows
                              for policy in POLICY_NAMES}
            assert len(rows) == 1
            assert len(adversary_rows) == 1

    def test_adversary_rows_present_and_bounded(self, grid_results):
        result = grid_results["lookup-O2-64B-lru"]
        by_key = {(row.kind, row.model): row.count
                  for row in result.adversary_rows}
        block = {row.kind: row.count for row in result.rows
                 if row.observer == "block"}
        assert by_key[("DATA", "trace")] == block["DATA"]
        assert by_key[("DATA", "time")] <= by_key[("DATA", "trace")]

    def test_ablation_has_no_adversary_rows(self, grid_results):
        assert grid_results["lookup-O2-64B-noadv"].adversary_rows == ()

    def test_adversary_rows_serialize(self, grid_results):
        result = grid_results["gather-16B-plru"]
        clone = SweepResult.from_payload(
            json.loads(json.dumps(result.to_payload())))
        assert clone.adversary_rows == result.adversary_rows
        report = clone.report
        assert report.adversary_bound(D, "trace").count == 1

    def test_kernel_policies_all_measured(self, grid_results):
        for policy in POLICY_NAMES:
            suffix = "" if policy == "lru" else f"-{policy}"
            metrics = grid_results[f"kernel-scatter_102f-16B{suffix}"].metrics
            assert metrics["instructions"] > 0 and metrics["cycles"] > 0


class TestPoolParallelism:
    def test_multi_scenario_pool_sweep(self, tmp_path):
        """≥8 scenarios through the process pool, deterministic store."""
        catalogue = all_scenarios(entry_bytes=16, nlimbs=4)
        scenarios = list(catalogue.values())
        assert len(scenarios) >= 8
        store_path = tmp_path / "pool_store.json"
        workers = max(2, min(4, multiprocessing.cpu_count()))
        runner = SweepRunner(processes=workers, store=str(store_path))

        results = runner.run(scenarios)
        assert len(results) == len(scenarios)
        by_name = {result.scenario: result for result in results}
        assert by_name["figure7b"].report.bits(D, "address") == 0.0
        assert by_name["figure14c"].report.bits(D, "block") == 0.0
        assert by_name["kernel-scatter_102f-16B"].metrics["instructions"] > 0

        # The pooled store matches an inline run's store byte for byte.
        inline_path = tmp_path / "inline_store.json"
        SweepRunner(processes=1, store=str(inline_path)).run(scenarios)
        assert store_path.read_bytes() == inline_path.read_bytes()


class TestFigureRegression:
    """Measured observation counts must stay bit-identical to the seed.

    The expectations below were captured from the seed revision (before the
    worklist/caching refactor); any engine or sweep change that alters a
    count is a regression even if the bits still round to the paper's
    numbers.
    """

    SEED_COUNTS = {
        # (figure, kind, observer) -> (count, stuttering_count)
        ("figure7a", "I-Cache", "address"): (2, 2),
        ("figure7a", "I-Cache", "block"): (2, 2),
        ("figure7a", "D-Cache", "address"): (2, 2),
        ("figure7a", "D-Cache", "block"): (2, 2),
        ("figure7b", "I-Cache", "address"): (2, 2),
        ("figure7b", "I-Cache", "block"): (2, 1),
        ("figure7b", "D-Cache", "address"): (1, 1),
        ("figure7b", "D-Cache", "block"): (1, 1),
        ("figure8", "I-Cache", "block"): (2, 2),
        ("figure8", "D-Cache", "block"): (2, 2),
        ("figure14a", "I-Cache", "address"): (2, 2),
        ("figure14a", "D-Cache", "address"): (50, 50),
        ("figure14a", "D-Cache", "bank"): (50, 50),
        ("figure14a", "D-Cache", "block"): (5, 5),
        ("figure14b", "D-Cache", "address"): (1, 1),
        ("figure14b", "I-Cache", "address"): (1, 1),
        ("figure14c", "D-Cache", "address"): (8 ** 32, 8 ** 32),
        ("figure14c", "D-Cache", "bank"): (2 ** 32, 2 ** 32),
        ("figure14c", "D-Cache", "block"): (1, 1),
        ("figure14c", "I-Cache", "address"): (1, 1),
        ("figure14d", "D-Cache", "address"): (1, 1),
        ("figure14d", "D-Cache", "bank"): (1, 1),
        ("figure14d", "I-Cache", "address"): (1, 1),
    }

    KIND_OF = {"I-Cache": I, "D-Cache": D}

    @pytest.fixture(scope="class")
    def figures(self):
        return {
            "figure7a": experiments.figure7a(),
            "figure7b": experiments.figure7b(),
            "figure8": experiments.figure8(),
            "figure14a": experiments.figure14a(),
            "figure14b": experiments.figure14b(nlimbs=8),
            "figure14c": experiments.figure14c(nbytes=32),
            "figure14d": experiments.figure14d(nbytes=16),
        }

    def test_counts_bit_identical_to_seed(self, figures):
        mismatches = []
        for (figure, cache, observer), expected in self.SEED_COUNTS.items():
            report = figures[figure].analysis.report
            bound = report.bound(self.KIND_OF[cache], observer)
            measured = (bound.count, bound.stuttering_count)
            if measured != expected:
                mismatches.append((figure, cache, observer, measured, expected))
        assert not mismatches, mismatches

    def test_all_figures_match_paper(self, figures):
        for name, figure in figures.items():
            assert figure.all_match, f"{name}: {figure.format()}"

    def test_figure_results_survive_serialization(self, figures):
        """The SweepResult carried by a figure reconstructs its report."""
        for figure in figures.values():
            sweep = figure.analysis
            clone = SweepResult.from_payload(
                json.loads(json.dumps(sweep.to_payload())))
            assert clone.rows == sweep.rows
            assert clone.report.bounds.keys() == sweep.report.bounds.keys()
