"""Chaos matrix: for every fault kind, chaos + heal == clean, byte for byte.

The store invariant under test: its bytes are a pure function of the set of
*successfully* completed scenarios.  Whatever a fault does to a run — kill a
worker, hang it, raise mid-scenario, corrupt a payload, kill the whole CLI —
after the retry ladder (and, where the fault outlives the run, a ``--resume``
pass) the store must be byte-identical to a run that never saw the fault.

Two layers are covered: the :class:`SweepRunner` pool path in-process, and
the ``python -m repro sweep`` CLI in real subprocesses for the exits that
cannot be simulated in-process (an inline crash taking the interpreter down,
SIGINT).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.casestudy.scenarios import (
    gather_scenario,
    lookup_scenario,
    sqm_scenario,
)
from repro.sweep import SweepRunner, faults

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _batch():
    return [
        sqm_scenario(opt_level=2, line_bytes=64),
        lookup_scenario(opt_level=2, line_bytes=64),
        gather_scenario(nbytes=16),
    ]


def _clean_store_bytes(tmp_path) -> bytes:
    path = tmp_path / "clean.json"
    SweepRunner(processes=2, store=path).run(_batch())
    return path.read_bytes()


class TestRunnerChaosMatrix:
    @pytest.mark.parametrize("kind", sorted(faults.FAULT_KINDS))
    def test_chaos_then_heal_reproduces_the_clean_store(
            self, kind, monkeypatch, tmp_path):
        clean = _clean_store_bytes(tmp_path)
        monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "markers"))
        monkeypatch.setenv(faults.FAULT_ENV, f"{kind}:lookup")
        chaos_path = tmp_path / "chaos.json"
        # The hang fault sleeps for an hour; only the supervisor's
        # no-progress kill gets that scenario back.
        timeout = 2 if kind == "hang" else None
        runner = SweepRunner(processes=2, store=chaos_path,
                             task_timeout_s=timeout)
        results = runner.run(_batch())
        if any(not result.ok for result in results):
            # The fault outlived the retry ladder (raise settles as an
            # error without retry): heal exactly like an operator would —
            # clear the fault and resume against the same store.
            monkeypatch.delenv(faults.FAULT_ENV)
            healed = SweepRunner(processes=2, store=chaos_path).run(_batch())
            assert all(result.ok for result in healed)
        assert chaos_path.read_bytes() == clean


def _cli_env(fault: str | None, marker_dir) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop(faults.FAULT_ENV, None)
    env.pop(faults.FAULT_DIR_ENV, None)
    if fault is not None:
        env[faults.FAULT_ENV] = fault
        env[faults.FAULT_DIR_ENV] = str(marker_dir)
    return env


def _cli_sweep(store, *, fault=None, marker_dir=None, resume=False,
               send_sigint_once_stored=False):
    argv = [sys.executable, "-m", "repro", "sweep", "sqm-O2-64B",
            "lookup-O2-64B", "--jobs", "1", "--store", str(store)]
    if resume:
        argv.append("--resume")
    proc = subprocess.Popen(argv, env=_cli_env(fault, marker_dir),
                            cwd=REPO_ROOT, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    if send_sigint_once_stored:
        # Interrupt only after the first scenario has checkpointed — the
        # regression under test is "finished work survives the interrupt".
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                if json.loads(store.read_text())["results"]:
                    break
            except (OSError, ValueError, KeyError):
                pass
            time.sleep(0.1)
        else:
            proc.kill()
            pytest.fail("no checkpoint appeared before the interrupt")
        proc.send_signal(signal.SIGINT)
    out, err = proc.communicate(timeout=120)
    return proc.returncode, out, err


class TestCliChaos:
    def test_inline_crash_exits_137_and_resume_completes(self, tmp_path):
        clean = tmp_path / "clean.json"
        code, _, _ = _cli_sweep(clean)
        assert code == 0

        store = tmp_path / "store.json"
        code, _, _ = _cli_sweep(store, fault="crash:lookup",
                                marker_dir=tmp_path / "markers")
        assert code == faults.CRASH_EXIT_CODE
        # The scenario that ran before the poison one survived the crash.
        assert json.loads(store.read_text())["results"]

        code, out, _ = _cli_sweep(store, resume=True)
        assert code == 0
        assert "resuming from" in out
        assert store.read_bytes() == clean.read_bytes()

    def test_sigint_saves_partial_results_and_resume_completes(
            self, tmp_path):
        clean = tmp_path / "clean.json"
        code, _, _ = _cli_sweep(clean)
        assert code == 0

        store = tmp_path / "store.json"
        code, _, err = _cli_sweep(store, fault="hang:lookup",
                                  marker_dir=tmp_path / "markers",
                                  send_sigint_once_stored=True)
        assert code == 130
        assert "interrupted" in err
        assert "--resume" in err

        code, _, _ = _cli_sweep(store, resume=True)
        assert code == 0
        assert store.read_bytes() == clean.read_bytes()
