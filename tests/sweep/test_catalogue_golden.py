"""Catalogue freeze: the pre-hierarchy scenario catalogue must stay
byte-identical — names, fingerprints, canonical scenario payloads, and
(mode-insensitive) result payloads — to the golden snapshot taken before
the hierarchy family landed.  The new ``*-llc-*`` entries ride alongside
without perturbing a single existing byte."""

import hashlib
import json
from pathlib import Path

import pytest

from repro.casestudy.scenarios import all_scenarios, hierarchy_scenarios
from repro.sweep.results import ResultStore, SweepResult
from repro.sweep.runner import execute_scenario
from repro.sweep.scenario import Scenario

GOLDEN_PATH = (Path(__file__).resolve().parents[1]
               / "data" / "catalogue_golden.json")

# Engine metrics that legitimately differ across execution modes
# (specialize/vectorize tiers on or off) — everything *else* in the result
# payload, bounds and adversary rows included, must match byte for byte.
# Kept in sync with tests/analysis/test_specialize.py.
MODE_SENSITIVE_METRICS = frozenset((
    "spec_blocks", "spec_block_runs", "spec_steps", "interp_steps",
    "cache_evictions",
    "decode_hits", "decode_misses",
    "projection_hits", "projection_misses",
    "lift_memo_hits", "lift_memo_misses", "lift_memo_evictions",
    "vs_intern_hits", "vs_intern_misses",
    "sym_intern_hits", "sym_intern_misses",
    "vec_ops", "vec_pairs", "vec_scalar_pairs",
))


def _sha256(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _result_sha256(result: SweepResult) -> str:
    payload = result.to_payload()
    payload["metrics"] = {key: value
                          for key, value in payload["metrics"].items()
                          if key not in MODE_SENSITIVE_METRICS}
    return _sha256(payload)


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def catalogue() -> dict:
    return all_scenarios()


class TestCatalogueFrozen:
    """Cheap structural freeze — no scenario execution."""

    def test_every_golden_scenario_still_exists(self, golden, catalogue):
        missing = sorted(set(golden) - set(catalogue))
        assert not missing, f"catalogue lost scenarios: {missing}"

    def test_fingerprints_unchanged(self, golden, catalogue):
        drifted = [name for name, entry in golden.items()
                   if catalogue[name].fingerprint() != entry["fingerprint"]]
        assert not drifted, f"fingerprints drifted: {sorted(drifted)}"

    def test_scenario_payload_bytes_unchanged(self, golden, catalogue):
        drifted = [
            name for name, entry in golden.items()
            if _sha256(catalogue[name].to_payload()) != entry["scenario_sha256"]
        ]
        assert not drifted, f"scenario payloads drifted: {sorted(drifted)}"

    def test_single_level_payloads_omit_hierarchy(self, golden, catalogue):
        """The hierarchy field must be invisible where it is unset —
        that's what keeps the golden hashes reachable at all."""
        for name in golden:
            assert "hierarchy" not in catalogue[name].to_payload()

    def test_hierarchy_entries_are_strictly_new(self, golden, catalogue):
        new = hierarchy_scenarios()
        assert set(new).isdisjoint(golden)
        assert set(new) <= set(catalogue)
        golden_prints = {entry["fingerprint"] for entry in golden.values()}
        for scenario in new.values():
            assert "hierarchy" in scenario.to_payload()
            assert scenario.fingerprint() not in golden_prints

    def test_payload_round_trip_entire_catalogue(self, catalogue):
        for scenario in catalogue.values():
            clone = Scenario.from_payload(scenario.to_payload())
            assert clone == scenario
            assert clone.fingerprint() == scenario.fingerprint()


class TestCatalogueExecutionDifferential:
    """Every golden scenario, executed on this revision, must reproduce
    the golden result hash (metrics above excluded) — the hierarchy
    subsystem may not change a single analysis outcome."""

    def test_results_bit_identical_to_golden(self, golden, catalogue):
        mismatches = []
        for name in sorted(golden):
            result = execute_scenario(catalogue[name])
            if _result_sha256(result) != golden[name]["result_sha256"]:
                mismatches.append(name)
        assert not mismatches, f"result payloads drifted: {mismatches}"

    def test_hierarchy_result_store_round_trip(self, tmp_path, catalogue):
        """A hierarchy result survives the on-disk store byte-identically,
        keyed by its own (hierarchy-bearing) fingerprint."""
        name = "lookup-O2-64B-llc-excl-fifo"
        result = execute_scenario(catalogue[name])
        assert any(row.model == "probe" for row in result.adversary_rows)
        store = ResultStore(tmp_path / "results.json")
        store.put(result)
        store.save()
        reloaded = ResultStore(tmp_path / "results.json")
        cached = reloaded.get(result.fingerprint)
        assert cached is not None
        assert cached.to_payload() == result.to_payload()
