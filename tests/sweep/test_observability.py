"""Observability must never touch a measured bit.

The tentpole invariant of the tracing layer: spans, timeline samples, and
metrics publication are annotations *around* the analysis. These tests run
representative scenarios with tracing off and on and require bit-identical
payloads (the full-catalogue differential runs in CI), check the telemetry
that rides along (multi-pid traces, environment blocks), and cover the
metrics-schema invalidation of the result store.
"""

import json

import pytest

from repro.casestudy.scenarios import (
    gather_scenario,
    kernel_scenario,
    sqm_scenario,
)
from repro.obs import trace
from repro.sweep.results import METRICS_SCHEMA, ResultStore, SweepResult
from repro.sweep.runner import SweepRunner, execute_scenario


@pytest.fixture(autouse=True)
def _tracer_off(monkeypatch):
    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    trace.stop()
    yield
    trace.stop()


def _subset():
    """Representative slice of the catalogue: leakage scenarios across
    transforms plus a kernel scenario."""
    return [
        sqm_scenario(opt_level=2, line_bytes=64),
        sqm_scenario(opt_level=0, line_bytes=32,
                     transforms=(("balance-branches", ()),)),
        gather_scenario(nbytes=16),
        kernel_scenario("scatter_102f", 16),
    ]


class TestOnOffDifferential:
    def test_payloads_bit_identical_with_tracing_on(self, monkeypatch):
        untraced = [execute_scenario(scenario).to_payload()
                    for scenario in _subset()]
        monkeypatch.setenv(trace.TRACE_ENV, "1")
        trace.start()
        traced = [execute_scenario(scenario).to_payload()
                  for scenario in _subset()]
        assert trace.drain()  # tracing really was on
        assert json.dumps(untraced, sort_keys=True) == \
            json.dumps(traced, sort_keys=True)

    def test_store_bytes_identical_with_tracing_on(self, tmp_path,
                                                   monkeypatch):
        SweepRunner(store=str(tmp_path / "off.json"),
                    use_cache=False).run(_subset())
        monkeypatch.setenv(trace.TRACE_ENV, "1")
        trace.start()
        SweepRunner(store=str(tmp_path / "on.json"),
                    use_cache=False).run(_subset())
        assert (tmp_path / "off.json").read_bytes() == \
            (tmp_path / "on.json").read_bytes()


class TestTraceShipping:
    def test_pool_workers_ship_spans_back(self, monkeypatch):
        """A traced pool sweep stitches worker events into the parent
        buffer: the exported trace shows at least two pids, with engine
        phases in the workers and the batch span in the parent."""
        import os

        monkeypatch.setenv(trace.TRACE_ENV, "1")
        trace.start()
        runner = SweepRunner(processes=2, use_cache=False)
        results = runner.run(_subset()[:2])
        assert all(result.rows for result in results)
        events = trace.drain()
        pids = {event["pid"] for event in events}
        assert len(pids) >= 2
        own = os.getpid()
        parent_names = {e["name"] for e in events if e["pid"] == own}
        worker_names = {e["name"] for e in events if e["pid"] != own}
        assert "sweep.batch" in parent_names
        assert "engine.explore" in worker_names
        assert any(name.startswith("scenario.") for name in worker_names)

    def test_traced_single_miss_still_engages_the_pool(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_ENV, "1")
        trace.start()
        runner = SweepRunner(processes=2, use_cache=False)
        runner.run([sqm_scenario(opt_level=2, line_bytes=64)])
        assert len({event["pid"] for event in trace.drain()}) >= 2

    def test_untraced_pool_run_ships_no_events(self):
        runner = SweepRunner(processes=2, use_cache=False)
        results = runner.run(_subset()[:2])
        assert all(result.rows for result in results)
        assert trace.drain() == []


class TestEnvironmentBlock:
    def test_inline_results_carry_machine_facts(self):
        result = execute_scenario(sqm_scenario(opt_level=2, line_bytes=64))
        environment = result.metrics["environment"]
        assert environment["peak_rss_bytes"] > 0
        assert environment["gc_pause_s"] >= 0.0
        assert environment["gc_collections"] >= 0

    def test_pool_results_carry_machine_facts(self):
        runner = SweepRunner(processes=2, use_cache=False)
        results = runner.run(_subset()[:2])
        for result in results:
            assert result.metrics["environment"]["peak_rss_bytes"] > 0

    def test_environment_is_not_in_the_payload(self):
        result = execute_scenario(sqm_scenario(opt_level=2, line_bytes=64))
        payload = result.to_payload()
        assert "environment" not in payload["metrics"]
        rebuilt = SweepResult.from_payload(payload)
        assert "environment" not in rebuilt.metrics


class TestMetricsSchema:
    def test_payload_records_the_schema(self):
        result = execute_scenario(sqm_scenario(opt_level=2, line_bytes=64))
        assert result.to_payload()["metrics_schema"] == METRICS_SCHEMA

    def test_store_invalidates_other_schemas(self, tmp_path):
        store_path = tmp_path / "store.json"
        scenario = sqm_scenario(opt_level=2, line_bytes=64)
        first = SweepRunner(store=str(store_path)).run_one(scenario)
        assert not first.cached
        assert ResultStore(str(store_path)).get(scenario.fingerprint())

        # Rewrite the cached entry as if an older (or newer) schema wrote
        # it; the store must drop it on load and the sweep must recompute.
        data = json.loads(store_path.read_text())
        for payload in data["results"].values():
            payload["metrics_schema"] = METRICS_SCHEMA - 1
        store_path.write_text(json.dumps(data))
        assert ResultStore(str(store_path)).get(scenario.fingerprint()) is None
        rerun = SweepRunner(store=str(store_path)).run_one(scenario)
        assert not rerun.cached
        assert rerun.rows == first.rows

    def test_store_invalidates_preversioning_entries(self, tmp_path):
        store_path = tmp_path / "store.json"
        scenario = sqm_scenario(opt_level=2, line_bytes=64)
        SweepRunner(store=str(store_path)).run_one(scenario)
        data = json.loads(store_path.read_text())
        for payload in data["results"].values():
            del payload["metrics_schema"]  # the pre-versioning era
        store_path.write_text(json.dumps(data))
        assert len(ResultStore(str(store_path))) == 0
