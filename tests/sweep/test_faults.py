"""The deterministic fault-injection harness (repro.sweep.faults)."""

import pytest

from repro.sweep import faults
from repro.sweep.faults import FaultPlan, InjectedFault


class TestFaultPlanParsing:
    def test_parses_kind_needle_and_times(self):
        plan = FaultPlan.parse("crash:gather:3")
        assert (plan.kind, plan.needle, plan.times) == ("crash", "gather", 3)

    def test_times_defaults_to_one(self):
        assert FaultPlan.parse("raise:sqm").times == 1

    @pytest.mark.parametrize("value", [
        "", "crash", "crash:", "meteor:sqm", "raise:sqm:zero", ":sqm",
    ])
    def test_malformed_values_parse_to_none(self, value):
        assert FaultPlan.parse(value) is None

    def test_every_documented_kind_parses(self):
        for kind in faults.FAULT_KINDS:
            assert FaultPlan.parse(f"{kind}:x") is not None

    def test_matching_is_case_insensitive_substring(self):
        plan = FaultPlan.parse("raise:GATHER")
        assert plan.matches("gather-16B-fifo")
        assert not plan.matches("sqm-O2-64B")


class TestFiringBudget:
    def test_in_process_budget_is_exact(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_DIR_ENV, raising=False)
        plan = FaultPlan.parse("raise:x:2")
        assert [plan.claim() for _ in range(4)] == [True, True, False, False]

    def test_marker_dir_budget_is_shared_across_plans(self, monkeypatch,
                                                      tmp_path):
        """Fresh plan instances (≈ fresh processes) share one budget."""
        monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "markers"))
        first, second = (FaultPlan.parse("crash:x") for _ in range(2))
        assert first.claim()
        assert not second.claim()  # the crashed worker's firing is consumed
        assert not first.claim()

    def test_active_plan_tracks_env_changes(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        assert faults.active_plan() is None
        monkeypatch.setenv(faults.FAULT_ENV, "hang:lookup")
        assert faults.active_plan().kind == "hang"
        monkeypatch.setenv(faults.FAULT_ENV, "not-a-plan")
        assert faults.active_plan() is None


class TestInjection:
    def test_raise_fault_fires_on_match_only(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_ENV, "raise:gather")
        monkeypatch.delenv(faults.FAULT_DIR_ENV, raising=False)
        faults.inject("scenario.start", "sqm-O2-64B")  # no match: no-op
        with pytest.raises(InjectedFault, match="scenario.start"):
            faults.inject("scenario.start", "gather-16B")
        faults.inject("scenario.start", "gather-16B")  # budget consumed

    def test_truncate_never_fires_at_inject_points(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_ENV, "truncate:gather")
        faults.inject("scenario.start", "gather-16B")  # must not raise

    def test_truncate_corrupts_payload_once(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_ENV, "truncate:gather")
        monkeypatch.delenv(faults.FAULT_DIR_ENV, raising=False)
        payload = {"scenario": "gather-16B", "fingerprint": "f" * 16}
        corrupted = faults.truncate_payload("gather-16B", payload)
        assert corrupted["_injected_truncation"]
        assert "fingerprint" not in corrupted
        # Budget of one: the retried scenario's payload passes through.
        assert faults.truncate_payload("gather-16B", payload) is payload

    def test_unmatched_payload_passes_through(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_ENV, "truncate:gather")
        payload = {"scenario": "sqm-O2-64B"}
        assert faults.truncate_payload("sqm-O2-64B", payload) is payload

    def test_no_plan_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        faults.inject("scenario.start", "anything")
        payload = {}
        assert faults.truncate_payload("anything", payload) is payload
