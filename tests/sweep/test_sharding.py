"""Cost-aware sweep sharding: balance, completeness, determinism.

The sharder only steers *which worker runs what* — the runner reassembles
results in input order — so the properties under test are:

- every scenario lands in exactly one shard (nothing dropped, nothing run
  twice), for any cost vector and shard count;
- on synthetic timings the greedy longest-first packing balances shard
  durations far better than count-based chunking (within 20% of the ideal
  even split);
- predictions prefer recorded bench timings (matched by scenario name
  against the log's keys) and fall back to the size heuristic, which ranks
  big analyses above toy ones above concrete-VM kernel replays;
- the partition is deterministic, so reruns shard identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudy.scenarios import all_scenarios
from repro.sweep.runner import SweepRunner
from repro.sweep.scenario import Scenario
from repro.sweep.sharding import calculate_shards, heuristic_cost, predict_costs

_TARGET = "repro.casestudy.targets.lookup_target"


def _scenario(name: str, kind: str = "leakage", **params) -> Scenario:
    return Scenario(name=name, target=_TARGET, kind=kind,
                    params=tuple(sorted(params.items())))


class TestCalculateShards:
    def test_balanced_within_20_percent_on_synthetic_timings(self):
        # One dominant scenario, a mid tier, and a long tail — the shape of
        # the real catalogue (fig14d-style analyses next to VM replays).
        costs = [8.0, 4.0, 4.0, 2.0, 2.0, 2.0, 2.0] + [0.25] * 32
        shards = calculate_shards(costs, 4)
        loads = [sum(costs[index] for index in shard) for shard in shards]
        ideal = sum(costs) / 4
        assert max(loads) <= ideal * 1.2
        assert min(loads) >= ideal * 0.8

    def test_never_drops_or_duplicates(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for n_shards in (1, 2, 3, 5, 8, 16):
            shards = calculate_shards(costs, n_shards)
            flat = sorted(index for shard in shards for index in shard)
            assert flat == list(range(len(costs))), n_shards

    @settings(max_examples=50, deadline=None)
    @given(costs=st.lists(st.floats(min_value=0.0, max_value=100.0),
                          max_size=40),
           n_shards=st.integers(min_value=1, max_value=8))
    def test_partition_property(self, costs, n_shards):
        shards = calculate_shards(costs, n_shards)
        assert len(shards) == n_shards
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(len(costs)))

    def test_deterministic(self):
        costs = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0]
        assert calculate_shards(costs, 3) == calculate_shards(costs, 3)

    def test_more_shards_than_work(self):
        shards = calculate_shards([1.0, 2.0], 5)
        assert sorted(index for shard in shards for index in shard) == [0, 1]

    def test_empty(self):
        assert calculate_shards([], 3) == [[], [], []]


class TestPredictCosts:
    def test_prefers_recorded_timings(self):
        scenarios = [_scenario("lookup-O2-64B"), _scenario("unheard-of")]
        timings = {"cli/sweep/lookup-O2-64B": 3.5}
        costs = predict_costs(scenarios, timings)
        assert costs[0] == 3.5
        assert costs[1] == heuristic_cost(scenarios[1])

    def test_largest_match_wins(self):
        # The log may hold both a toy-geometry CLI timing and a
        # full-geometry benchmark timing for the same scenario name;
        # over-estimating is the safe direction for longest-first packing.
        scenario = _scenario("lookup-O2-64B")
        timings = {"cli/sweep/lookup-O2-64B": 0.1,
                   "benchmarks/bench_x.py::test_lookup-O2-64B_full": 2.0}
        assert predict_costs([scenario], timings) == [2.0]

    def test_tolerates_missing_and_junk_logs(self):
        scenario = _scenario("lookup-O2-64B")
        fallback = heuristic_cost(scenario)
        assert predict_costs([scenario], None) == [fallback]
        assert predict_costs([scenario], {}) == [fallback]
        assert predict_costs(
            [scenario], {"cli/sweep/lookup-O2-64B": "fast"}) == [fallback]
        assert predict_costs(
            [scenario], {"cli/sweep/lookup-O2-64B": -1.0}) == [fallback]

    def test_heuristic_ranks_by_size_and_kind(self):
        big = _scenario("big", nbytes=384, nlimbs=24)
        toy = _scenario("toy", nbytes=32, nlimbs=8)
        replay = _scenario("replay", kind="kernel", nbytes=32)
        assert heuristic_cost(big) > heuristic_cost(toy) > heuristic_cost(replay)


class TestRunnerIntegration:
    def test_pool_results_in_input_order(self):
        """A sharded pool run returns the same results, in the same order,
        as the inline runner — sharding must never reorder or drop."""
        names = ["lookup-O2-64B", "kernel-scatter_102f-32B",
                 "sqm-O2-64B", "naive-32B", "figure7a"]
        catalogue = all_scenarios()
        selected = [catalogue[name] for name in names]
        pooled = SweepRunner(processes=2, use_cache=False,
                             bench_log={}).run(selected)
        inline = SweepRunner(processes=1, use_cache=False).run(selected)
        assert [result.scenario for result in pooled] == names
        assert [result.to_payload() for result in pooled] == \
            [result.to_payload() for result in inline]

    def test_bench_log_path_accepted(self, tmp_path):
        runner = SweepRunner(bench_log=tmp_path / "missing.json")
        assert runner._timings == {}
        runner = SweepRunner(bench_log={"cli/sweep/x": 1.0})
        assert runner._timings == {"cli/sweep/x": 1.0}
