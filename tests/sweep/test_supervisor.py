"""The supervised pool: death detection, retry, bisection, quarantine.

Every test drives the real ``SweepRunner`` pool path with real worker
processes and the deterministic fault harness — no mocked process trees.
Scenario sets use the fast catalogue geometry (tens of milliseconds per
scenario), and crash/hang tests set ``REPRO_FAULT_DIR`` so the firing
budget survives the worker it kills.
"""

import pytest

from repro.casestudy.scenarios import (
    gather_scenario,
    lookup_scenario,
    sqam_scenario,
    sqm_scenario,
)
from repro.sweep import SweepRunner, faults


def _batch():
    return [
        sqm_scenario(opt_level=2, line_bytes=64),
        lookup_scenario(opt_level=2, line_bytes=64),
        sqam_scenario(opt_level=2, line_bytes=64),
        gather_scenario(nbytes=16),
    ]


@pytest.fixture
def fault_dir(monkeypatch, tmp_path):
    monkeypatch.setenv(faults.FAULT_DIR_ENV, str(tmp_path / "markers"))


class TestWorkerDeathRecovery:
    def test_crashed_scenario_is_retried_to_success(self, monkeypatch,
                                                    fault_dir, tmp_path):
        monkeypatch.setenv(faults.FAULT_ENV, "crash:lookup")
        runner = SweepRunner(processes=2, store=tmp_path / "store.json")
        batch = _batch()
        results = runner.run(batch)
        assert [result.scenario for result in results] == [
            scenario.name for scenario in batch]
        assert all(result.ok for result in results)
        pool = runner.last_pool
        assert pool.worker_deaths == 1
        assert pool.retries == 1
        assert pool.quarantined == 0
        # Every scenario — the once-crashed one included — reached the store.
        assert all(scenario.fingerprint() in runner.store
                   for scenario in batch)

    def test_truncated_payload_is_retried(self, monkeypatch, fault_dir):
        monkeypatch.setenv(faults.FAULT_ENV, "truncate:sqam")
        runner = SweepRunner(processes=2, use_cache=False)
        results = runner.run(_batch())
        assert all(result.ok for result in results)
        pool = runner.last_pool
        assert pool.retries == 1
        assert pool.worker_deaths == 0  # the worker itself stayed healthy

    def test_hung_worker_is_killed_and_scenario_retried(self, monkeypatch,
                                                        fault_dir):
        monkeypatch.setenv(faults.FAULT_ENV, "hang:gather")
        runner = SweepRunner(processes=2, use_cache=False, task_timeout_s=2)
        results = runner.run(_batch())
        assert all(result.ok for result in results)
        assert runner.last_pool.worker_deaths == 1


class TestQuarantine:
    def test_poison_scenario_is_quarantined_not_dropped(self, monkeypatch,
                                                        fault_dir, tmp_path):
        # Budget far past the retry cap: the scenario crashes every attempt.
        monkeypatch.setenv(faults.FAULT_ENV, "crash:lookup:99")
        runner = SweepRunner(processes=2, store=tmp_path / "store.json",
                             max_retries=1)
        batch = _batch()
        results = runner.run(batch)
        by_name = {result.scenario: result for result in results}
        poisoned = by_name[lookup_scenario(opt_level=2, line_bytes=64).name]
        assert poisoned.status == "error"
        assert "quarantined" in " ".join(poisoned.warnings)
        assert poisoned.metrics["error"]["attempts"] == 2  # initial + 1 retry
        # The rest of the batch is unharmed and stored; the poison is not.
        healthy = [result for result in results if result is not poisoned]
        assert all(result.ok for result in healthy)
        assert len(runner.store) == len(healthy)
        assert runner.last_pool.quarantined == 1

    def test_raise_fault_becomes_error_result_without_retry(self, monkeypatch,
                                                            fault_dir,
                                                            tmp_path):
        monkeypatch.setenv(faults.FAULT_ENV, "raise:sqm-")
        runner = SweepRunner(processes=2, store=tmp_path / "store.json")
        results = runner.run(_batch())
        failed = [result for result in results if not result.ok]
        assert len(failed) == 1
        assert failed[0].status == "error"
        assert failed[0].metrics["error"]["type"] == "InjectedFault"
        # An in-worker exception is the error *policy*, not a worker death.
        assert runner.last_pool.worker_deaths == 0
        assert failed[0].fingerprint not in runner.store


class TestPoolInvariants:
    def test_results_keep_input_order_under_chaos(self, monkeypatch,
                                                  fault_dir):
        monkeypatch.setenv(faults.FAULT_ENV, "crash:sqam")
        runner = SweepRunner(processes=3, use_cache=False)
        batch = _batch()
        results = runner.run(batch)
        assert [result.scenario for result in results] == [
            scenario.name for scenario in batch]

    def test_checkpoint_lands_before_the_batch_ends(self, monkeypatch,
                                                    tmp_path):
        """Results journal into the store as they complete, not at the end."""
        seen = []
        runner = SweepRunner(processes=2, store=tmp_path / "store.json")
        original = runner._checkpoint

        def spying_checkpoint():
            original()
            seen.append((tmp_path / "store.json").exists())

        monkeypatch.setattr(runner, "_checkpoint", spying_checkpoint)
        runner.run(_batch())
        assert len(seen) == len(_batch())  # one journal write per scenario
        assert all(seen)

    def test_clean_pool_runs_report_no_supervision_noise(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        runner = SweepRunner(processes=2, use_cache=False)
        results = runner.run(_batch())
        assert all(result.ok for result in results)
        pool = runner.last_pool
        assert (pool.retries, pool.worker_deaths, pool.quarantined) == (0, 0, 0)
