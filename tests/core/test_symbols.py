"""Tests for symbol allocation, origins/offsets, and valuations (λ/λ̄)."""


from repro.core.mask import Mask
from repro.core.masked import MaskedOps, MaskedSymbol
from repro.core.symbols import SymbolKind, SymbolTable, Valuation

WIDTH = 16


class TestSymbolTable:
    def test_fresh_identifiers_are_unique(self):
        table = SymbolTable(width=WIDTH)
        idents = {table.fresh() for _ in range(10)}
        assert len(idents) == 10

    def test_kinds(self):
        table = SymbolTable(width=WIDTH)
        low = table.input_symbol("buf")
        unknown = table.unknown_symbol("mem0")
        derived = table.fresh(provenance=("ADD", None, None))
        assert table.kind(low) == SymbolKind.INPUT
        assert table.kind(unknown) == SymbolKind.UNKNOWN
        assert table.kind(derived) == SymbolKind.DERIVED
        assert table.input_symbols() == [low]

    def test_names(self):
        table = SymbolTable(width=WIDTH)
        ident = table.input_symbol("buf")
        assert table.name(ident) == "buf"
        anonymous = table.fresh()
        assert table.name(anonymous).startswith("s")

    def test_origin_defaults_to_self(self):
        table = SymbolTable(width=WIDTH)
        ms = MaskedSymbol.symbol(table.input_symbol("p"), WIDTH)
        origin, offset = table.origin_offset(ms)
        assert origin == ms
        assert offset == 0

    def test_successor_registry(self):
        table = SymbolTable(width=WIDTH)
        base = MaskedSymbol.symbol(table.input_symbol("p"), WIDTH)
        moved = MaskedSymbol.symbol(table.fresh(), WIDTH)
        table.register_origin(moved, base, 8)
        table.register_successor(base, 8, moved)
        assert table.successor(base, 8) == moved
        assert table.successor(base, 12) is None
        assert table.same_origin(moved, moved)

    def test_all_symbols_ordered(self):
        table = SymbolTable(width=WIDTH)
        first = table.fresh()
        second = table.fresh()
        assert table.all_symbols() == [first, second]


class TestValuation:
    def test_input_resolution(self):
        table = SymbolTable(width=WIDTH)
        sym = table.input_symbol("x")
        lam = Valuation(table, {sym: 0x1234})
        assert lam.value_of(sym) == 0x1234

    def test_assign_clears_cache(self):
        table = SymbolTable(width=WIDTH)
        sym = table.input_symbol("x")
        lam = Valuation(table, {sym: 1})
        assert lam.value_of(sym) == 1
        lam.assign(sym, 2)
        assert lam.value_of(sym) == 2

    def test_unknown_default(self):
        table = SymbolTable(width=WIDTH)
        sym = table.unknown_symbol("mem")
        lam = Valuation(table, {}, unknown_default=lambda ident: 0xBEEF)
        assert lam.value_of(sym) == 0xBEEF

    def test_provenance_resolution(self):
        """λ̄ extends λ through operation provenance (paper §7.1)."""
        table = SymbolTable(width=WIDTH)
        ops = MaskedOps(table)
        sym = table.input_symbol("p")
        base = MaskedSymbol.symbol(sym, WIDTH)
        aligned, _ = ops.and_(base, MaskedSymbol.constant(0xFFC0, WIDTH))
        moved, _ = ops.add(aligned, MaskedSymbol.constant(0x40, WIDTH))
        lam = Valuation(table, {sym: 0x1234})
        expected = ((0x1234 & 0xFFC0) + 0x40) & 0xFFFF
        assert lam.concretize(moved) == expected

    def test_concretize_constant(self):
        table = SymbolTable(width=WIDTH)
        lam = Valuation(table)
        assert lam.concretize(MaskedSymbol.constant(99, WIDTH)) == 99

    def test_concretize_masked(self):
        table = SymbolTable(width=WIDTH)
        sym = table.input_symbol("s")
        masked = MaskedSymbol(sym=sym, mask=Mask.from_string("T" * 12 + "0000"))
        lam = Valuation(table, {sym: 0xFFFF})
        assert lam.concretize(masked) == 0xFFF0
