"""Tests for leakage quantification and report formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.leakage import LeakageReport, ObservationBound, format_bits, log2_int
from repro.core.observers import AccessKind


class TestLog2Int:
    def test_small_values(self):
        assert log2_int(1) == 0.0
        assert log2_int(2) == 1.0
        assert abs(log2_int(50) - math.log2(50)) < 1e-12

    def test_paper_numbers(self):
        assert abs(log2_int(49) - 5.61) < 0.01  # Fig 14a address observer
        assert abs(log2_int(5) - 2.32) < 0.01   # Fig 14a block observer

    def test_huge_power_of_two(self):
        assert log2_int(8 ** 384) == pytest.approx(1152.0)  # Fig 14c
        assert log2_int(2 ** 384) == pytest.approx(384.0)   # bank observer

    def test_huge_non_power(self):
        value = 3 ** 1000
        assert log2_int(value) == pytest.approx(1000 * math.log2(3), rel=1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2_int(0)

    @given(st.integers(min_value=1, max_value=10 ** 500))
    def test_monotone(self, value):
        assert log2_int(value) <= log2_int(value + 1)
        assert log2_int(value) == pytest.approx(log2_int(value), rel=1e-9)


class TestFormatBits:
    def test_integer_bits(self):
        assert format_bits(1.0) == "1 bit"
        assert format_bits(0.0) == "0 bit"

    def test_fractional_bits(self):
        assert format_bits(5.643856) == "5.6 bit"
        assert format_bits(2.3219) == "2.3 bit"


class TestLeakageReport:
    def _bound(self, kind, observer, count, stutter=None):
        return ObservationBound(
            kind=kind, observer=observer, count=count,
            stuttering_count=stutter if stutter is not None else count,
        )

    def test_record_and_lookup(self):
        report = LeakageReport(target="demo")
        report.record(self._bound(AccessKind.DATA, "block", 2))
        assert report.bits(AccessKind.DATA, "block") == 1.0

    def test_stuttering_variant(self):
        report = LeakageReport()
        report.record(self._bound(AccessKind.INSTRUCTION, "block", 2, stutter=1))
        assert report.bits(AccessKind.INSTRUCTION, "block") == 1.0
        assert report.bits(AccessKind.INSTRUCTION, "block", stuttering=True) == 0.0

    def test_non_interference(self):
        report = LeakageReport()
        report.record(self._bound(AccessKind.DATA, "address", 1))
        assert report.is_non_interferent(AccessKind.DATA, "address")

    def test_paper_row(self):
        report = LeakageReport()
        report.record(self._bound(AccessKind.DATA, "address", 50))
        report.record(self._bound(AccessKind.DATA, "block", 5))
        row = report.paper_row(AccessKind.DATA)
        assert row["address"] == pytest.approx(math.log2(50))
        assert row["block"] == pytest.approx(math.log2(5))

    def test_format_paper_table(self):
        report = LeakageReport(target="square-and-multiply")
        for kind in (AccessKind.INSTRUCTION, AccessKind.DATA):
            report.record(self._bound(kind, "address", 2))
            report.record(self._bound(kind, "block", 2))
        table = report.format_paper_table()
        assert "I-Cache" in table and "D-Cache" in table
        assert "1 bit" in table

    def test_format_full_table_includes_bank(self):
        report = LeakageReport()
        report.record(self._bound(AccessKind.DATA, "bank", 2 ** 384))
        table = report.format_full_table()
        assert "384 bit" in table
