"""Unit tests for masks over {0,1,⊤}^n."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mask import Mask


def masks(width=8):
    @st.composite
    def build(draw):
        known = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & known
        return Mask(known=known, value=value, width=width)

    return build()


class TestConstruction:
    def test_top(self):
        mask = Mask.top(8)
        assert mask.is_top
        assert not mask.is_constant
        assert str(mask) == "TTTTTTTT"

    def test_constant(self):
        mask = Mask.constant(0x3F, 8)
        assert mask.is_constant
        assert mask.value == 0x3F
        assert str(mask) == "00111111"

    def test_from_string(self):
        mask = Mask.from_string("TT0100")
        assert mask.width == 6
        assert mask.bit_at(5) is None
        assert mask.bit_at(4) is None
        assert mask.bit_at(2) == 1
        assert mask.bit_at(0) == 0

    def test_from_string_roundtrip(self):
        text = "T01T10"
        assert str(Mask.from_string(text)) == text

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Mask.from_string("T0X1")

    def test_invariant_value_on_symbolic(self):
        with pytest.raises(ValueError):
            Mask(known=0b01, value=0b10, width=2)

    def test_invariant_known_within_width(self):
        with pytest.raises(ValueError):
            Mask(known=0b100, value=0, width=2)


class TestQueries:
    def test_low_bits_known(self):
        mask = Mask.from_string("TTT000")
        assert mask.low_bits_known(3)
        assert not mask.low_bits_known(4)
        assert mask.low_bits_value(3) == 0

    def test_low_bits_value_requires_known(self):
        mask = Mask.top(8)
        with pytest.raises(ValueError):
            mask.low_bits_value(1)

    def test_known_prefix_length(self):
        assert Mask.from_string("TTT011").known_prefix_length() == 3
        assert Mask.top(6).known_prefix_length() == 0
        assert Mask.constant(0, 6).known_prefix_length() == 6

    def test_bit_at_bounds(self):
        mask = Mask.top(4)
        with pytest.raises(IndexError):
            mask.bit_at(4)


class TestCombinators:
    def test_concretize_fills_symbolic_bits(self):
        mask = Mask.from_string("TT01")
        assert mask.concretize(0b1100) == 0b1101
        assert mask.concretize(0b0000) == 0b0001

    def test_concretize_known_bits_win(self):
        mask = Mask.constant(0b1010, 4)
        assert mask.concretize(0b0101) == 0b1010

    def test_matches(self):
        mask = Mask.from_string("TT01")
        assert mask.matches(0b1101)
        assert mask.matches(0b0001)
        assert not mask.matches(0b0011)

    def test_with_bits(self):
        mask = Mask.top(6).with_bits(known=0x3F & 0b000111, value=0b000101)
        assert str(mask) == "TTT101"

    def test_drop_low(self):
        mask = Mask.from_string("TT0110")
        dropped = mask.drop_low(2)
        assert str(dropped) == "TT01"
        assert dropped.width == 4

    def test_drop_low_rejects_bad_count(self):
        with pytest.raises(ValueError):
            Mask.top(4).drop_low(5)

    @given(masks(), st.integers(min_value=0, max_value=255))
    def test_concretize_always_matches(self, mask, fill):
        assert mask.matches(mask.concretize(fill))

    @given(masks(), st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=7))
    def test_drop_low_commutes_with_concretize(self, mask, fill, count):
        """Projecting the mask then filling == filling then shifting."""
        dropped = mask.drop_low(count)
        assert dropped.concretize(fill >> count) == mask.concretize(fill) >> count
