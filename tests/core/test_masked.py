"""Unit and property tests for the masked symbol domain (paper §5).

The property tests are executable versions of Lemma 1 (local soundness): for
every operation and every valuation λ of the input symbols, the concrete
result of the operation on concretized operands is contained in the
concretization of the abstract result (where fresh symbols are resolved
through their provenance, implementing λ̄ ∈ Ext(λ)).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mask import Mask
from repro.core.masked import MaskedOps, MaskedSymbol, concrete_op
from repro.core.symbols import SymbolTable, Valuation

WIDTH = 8  # small width keeps the property tests fast yet bit-complete
WORDS = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


@pytest.fixture()
def table():
    return SymbolTable(width=WIDTH)


@pytest.fixture()
def ops(table):
    return MaskedOps(table)


def make_symbolic(table, known, value):
    sym = table.input_symbol("s")
    return MaskedSymbol(sym=sym, mask=Mask(known=known, value=value & known, width=WIDTH))


class TestConstants:
    def test_constant_ops_are_exact(self, ops):
        x = MaskedSymbol.constant(0b1100, WIDTH)
        y = MaskedSymbol.constant(0b1010, WIDTH)
        assert ops.and_(x, y)[0].value == 0b1000
        assert ops.or_(x, y)[0].value == 0b1110
        assert ops.xor(x, y)[0].value == 0b0110
        assert ops.add(x, y)[0].value == 0b10110
        assert ops.sub(x, y)[0].value == 0b0010

    def test_constant_flags(self, ops):
        x = MaskedSymbol.constant(1, WIDTH)
        flags = ops.sub(x, x)[1]
        assert (flags.zf, flags.cf) == (1, 0)
        flags = ops.sub(MaskedSymbol.constant(0, WIDTH), x)[1]
        assert (flags.zf, flags.cf) == (0, 1)

    def test_constant_masked_symbol_requires_known_mask(self):
        with pytest.raises(ValueError):
            MaskedSymbol(sym=None, mask=Mask.top(WIDTH))


class TestAlignIdiom:
    """The paper's Example 5/6: the OpenSSL `align` function."""

    def test_and_clears_low_bits_keeps_symbol(self, table, ops):
        # AND 0xC0-style alignment mask keeps the symbol: the constant is
        # neutral (1) on all symbolic bits.
        buf = MaskedSymbol.symbol(table.input_symbol("buf"), WIDTH)
        aligned, _ = ops.and_(buf, MaskedSymbol.constant(0b11111000, WIDTH))
        assert aligned.sym == buf.sym
        assert str(aligned.mask) == "TTTTT000"

    def test_add_block_size_gives_fresh_symbol(self, table, ops):
        # ADD 0x08 (the block size) flows a carry into the symbolic bits:
        # a fresh symbol s' with the same cleared low bits results.
        buf = MaskedSymbol.symbol(table.input_symbol("buf"), WIDTH)
        aligned, _ = ops.and_(buf, MaskedSymbol.constant(0b11111000, WIDTH))
        moved, flags = ops.add(aligned, MaskedSymbol.constant(0b1000, WIDTH))
        assert moved.sym != aligned.sym
        assert str(moved.mask) == "TTTTT000"
        # but the origin/offset machinery remembers where it came from
        origin, offset = table.origin_offset(moved)
        assert origin == aligned
        assert offset == 8

    def test_add_small_constant_keeps_symbol(self, table, ops):
        # Example 6: adding 0x07 (within the block) keeps the symbol, so the
        # result provably stays in the same block.
        buf = MaskedSymbol.symbol(table.input_symbol("buf"), WIDTH)
        aligned, _ = ops.and_(buf, MaskedSymbol.constant(0b11111000, WIDTH))
        inside, flags = ops.add(aligned, MaskedSymbol.constant(0b111, WIDTH))
        assert inside.sym == aligned.sym
        assert str(inside.mask) == "TTTTT111"
        assert flags.cf == 0


class TestKnownBitsAdd:
    """The bitwise-parallel ADD: known bits survive above a bounded
    symbolic window when no carry can escape it (what keeps the aligned
    AES tables' ``base + (secret & 0x3C)`` addresses inside one line)."""

    def test_disjoint_window_keeps_high_bits(self, table, ops):
        # x: symbolic only in bits 2..4, zero elsewhere; +0b0100000 cannot
        # ripple a carry, so every bit above the window stays known.
        x = make_symbolic(table, known=0b11100011, value=0)
        windowed, _ = ops.and_(x, MaskedSymbol.constant(0b00011100, WIDTH))
        moved, _ = ops.add(windowed, MaskedSymbol.constant(0b00100000, WIDTH))
        assert str(moved.mask) == "001TTT00"

    def test_possible_carry_tops_the_tail(self, table, ops):
        # Adding a constant with a bit inside the window can carry out of
        # it: bits above the window become unknown until the next known
        # absorber, never below it.
        x = make_symbolic(table, known=0b11100011, value=0)
        windowed, _ = ops.and_(x, MaskedSymbol.constant(0b00011100, WIDTH))
        moved, _ = ops.add(windowed, MaskedSymbol.constant(0b00000100, WIDTH))
        assert str(moved.mask).endswith("TTT00")
        assert not moved.mask.is_known(5)

    @given(xk=WORDS, xv=WORDS, yk=WORDS, yv=WORDS)
    @settings(max_examples=300, deadline=None)
    def test_add_mask_is_sound_exhaustively(self, xk, xv, yk, yv):
        """Every concretization of both operands lands in the result mask."""
        local_ops = MaskedOps(SymbolTable(width=WIDTH))
        xm = Mask(known=xk, value=xv & xk, width=WIDTH)
        ym = Mask(known=yk, value=yv & yk, width=WIDTH)
        mask, _stop_carry, _neutral = local_ops._add_mask(xm, ym)
        unknown_x = [i for i in range(WIDTH) if not xm.is_known(i)]
        unknown_y = [i for i in range(WIDTH) if not ym.is_known(i)]
        free = unknown_x + unknown_y
        for bits in range(1 << min(len(free), 8)):
            x_val, y_val = xm.value, ym.value
            for position, bit_index in enumerate(unknown_x):
                x_val |= ((bits >> position) & 1) << bit_index
            for position, bit_index in enumerate(unknown_y):
                y_val |= ((bits >> (len(unknown_x) + position)) & 1) << bit_index
            total = (x_val + y_val) & ((1 << WIDTH) - 1)
            assert mask.matches(total), (str(xm), str(ym), str(mask), total)


class TestOffsets:
    """§5.4.2: origins, offsets, and the succ memo-table."""

    def test_succ_reuse_returns_identical_object(self, table, ops):
        base = MaskedSymbol.symbol(table.input_symbol("r"), WIDTH)
        four = MaskedSymbol.constant(4, WIDTH)
        first, _ = ops.add(base, four)
        second, _ = ops.add(base, four)
        assert first == second

    def test_chained_adds_accumulate_offsets(self, table, ops):
        base = MaskedSymbol.symbol(table.input_symbol("r"), WIDTH)
        one = MaskedSymbol.constant(1, WIDTH)
        current = base
        for expected_offset in range(1, 5):
            current, _ = ops.add(current, one)
            origin, offset = table.origin_offset(current)
            assert origin == base
            assert offset == expected_offset

    def test_add_then_sub_returns_to_base(self, table, ops):
        base = MaskedSymbol.symbol(table.input_symbol("r"), WIDTH)
        four = MaskedSymbol.constant(4, WIDTH)
        moved, _ = ops.add(base, four)
        back, _ = ops.sub(moved, four)
        assert back == base

    def test_same_origin_sub_is_exact(self, table, ops):
        # Example 7/8: pointers x (= r+i) and y (= r+N) compare exactly.
        base = MaskedSymbol.symbol(table.input_symbol("r"), WIDTH)
        x, _ = ops.add(base, MaskedSymbol.constant(3, WIDTH))
        y, _ = ops.add(base, MaskedSymbol.constant(5, WIDTH))
        difference, flags = ops.sub(x, y)
        assert difference.is_constant
        assert difference.value == (3 - 5) & 0xFF
        assert flags.zf == 0
        assert flags.cf == 1  # x is (unsigned) below y

    def test_same_origin_cmp_equal_offsets(self, table, ops):
        base = MaskedSymbol.symbol(table.input_symbol("r"), WIDTH)
        step = MaskedSymbol.constant(5, WIDTH)
        x, _ = ops.add(base, step)
        y, _ = ops.add(base, step)
        flags = ops.cmp(x, y)
        assert flags.zf == 1

    def test_identical_symbol_sub_is_zero(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("p"), WIDTH)
        result, flags = ops.sub(s, s)
        assert result.is_constant and result.value == 0
        assert flags.zf == 1


class TestXor:
    def test_xor_same_symbol_is_zero(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, flags = ops.xor(s, s)
        assert result.is_constant and result.value == 0
        assert flags.zf == 1

    def test_xor_with_zero_keeps_symbol(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, _ = ops.xor(s, MaskedSymbol.constant(0, WIDTH))
        assert result.sym == s.sym
        assert result.mask.is_top

    def test_xor_with_nonzero_constant_freshens(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, _ = ops.xor(s, MaskedSymbol.constant(1, WIDTH))
        assert result.sym != s.sym


class TestBooleanAbsorption:
    def test_and_with_zero_is_zero(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, flags = ops.and_(s, MaskedSymbol.constant(0, WIDTH))
        assert result.is_constant and result.value == 0
        assert flags.zf == 1

    def test_or_with_ones_is_ones(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, _ = ops.or_(s, MaskedSymbol.constant(0xFF, WIDTH))
        assert result.is_constant and result.value == 0xFF

    def test_zf_zero_when_known_bit_set(self, table, ops):
        s = make_symbolic(table, known=0b1, value=0b1)
        flags = ops.and_(s, MaskedSymbol.constant(0xFF, WIDTH))[1]
        assert flags.zf == 0


class TestShifts:
    def test_shl_constant(self, ops):
        x = MaskedSymbol.constant(0b11, WIDTH)
        assert ops.shl(x, 2)[0].value == 0b1100

    def test_shl_symbolic_keeps_known_bits(self, table, ops):
        s = make_symbolic(table, known=0b1111, value=0b0101)
        result, _ = ops.shl(s, 2)
        assert result.mask.bit_at(0) == 0
        assert result.mask.bit_at(1) == 0
        assert result.mask.bit_at(2) == 1
        assert result.mask.bit_at(3) == 0
        assert result.mask.bit_at(4) == 1

    def test_shr_fills_high_zeros(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, _ = ops.shr(s, 3)
        assert result.mask.bit_at(WIDTH - 1) == 0
        assert result.mask.bit_at(WIDTH - 3) == 0
        assert result.mask.bit_at(0) is None

    def test_mul_power_of_two_is_shift(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, _ = ops.mul(s, MaskedSymbol.constant(8, WIDTH))
        assert result.mask.low_bits_known(3)
        assert result.mask.low_bits_value(3) == 0

    def test_mul_by_zero(self, table, ops):
        s = MaskedSymbol.symbol(table.input_symbol("v"), WIDTH)
        result, flags = ops.mul(s, MaskedSymbol.constant(0, WIDTH))
        assert result.is_constant and result.value == 0


# ----------------------------------------------------------------------
# Property-based local soundness (Lemma 1)
# ----------------------------------------------------------------------

def operand_strategy(table):
    """Draw a masked symbol over a shared pool of two input symbols."""

    @st.composite
    def build(draw):
        form = draw(st.sampled_from(["const", "sym0", "sym1"]))
        known = draw(st.integers(min_value=0, max_value=(1 << WIDTH) - 1))
        value = draw(st.integers(min_value=0, max_value=(1 << WIDTH) - 1)) & known
        if form == "const":
            return MaskedSymbol.constant(value | ~known & 0, WIDTH) if known == (1 << WIDTH) - 1 \
                else MaskedSymbol.constant(value, WIDTH)
        sym = table.input_symbols()[0 if form == "sym0" else 1]
        return MaskedSymbol(sym=sym, mask=Mask(known=known, value=value, width=WIDTH))

    return build()


OPS = ["AND", "OR", "XOR", "ADD", "SUB"]


@settings(max_examples=300, deadline=None)
@given(
    op_name=st.sampled_from(OPS),
    known_x=st.integers(min_value=0, max_value=255),
    value_x=st.integers(min_value=0, max_value=255),
    known_y=st.integers(min_value=0, max_value=255),
    value_y=st.integers(min_value=0, max_value=255),
    same_symbol=st.booleans(),
    y_constant=st.booleans(),
    lam0=st.integers(min_value=0, max_value=255),
    lam1=st.integers(min_value=0, max_value=255),
)
def test_local_soundness_binary_ops(
    op_name, known_x, value_x, known_y, value_y, same_symbol, y_constant, lam0, lam1
):
    """Lemma 1: OP(γ_λ(x), γ_λ(y)) ∈ γ_λ̄(OP♯(x, y)) for all λ."""
    table = SymbolTable(width=WIDTH)
    ops = MaskedOps(table)
    sym0 = table.input_symbol("a")
    sym1 = sym0 if same_symbol else table.input_symbol("b")

    x = MaskedSymbol(sym=sym0, mask=Mask(known=known_x, value=value_x & known_x, width=WIDTH))
    if y_constant:
        y = MaskedSymbol.constant(value_y, WIDTH)
    else:
        y = MaskedSymbol(sym=sym1, mask=Mask(known=known_y, value=value_y & known_y, width=WIDTH))

    abstract, _flags = ops.apply(op_name, x, y)

    valuation = Valuation(table, {sym0: lam0, sym1: lam1})
    concrete = concrete_op(
        op_name, valuation.concretize(x), valuation.concretize(y), WIDTH
    )
    assert valuation.concretize(abstract) == concrete


@settings(max_examples=200, deadline=None)
@given(
    op_name=st.sampled_from(OPS),
    known_x=st.integers(min_value=0, max_value=255),
    value_x=st.integers(min_value=0, max_value=255),
    constant=st.integers(min_value=0, max_value=255),
    lam=st.integers(min_value=0, max_value=255),
)
def test_flag_soundness_vs_concrete(op_name, known_x, value_x, constant, lam):
    """Whenever the abstract flags are determined, they match the concrete run."""
    from repro.core.bitvec import add_with_carry, sub_with_borrow

    table = SymbolTable(width=WIDTH)
    ops = MaskedOps(table)
    sym = table.input_symbol("a")
    x = MaskedSymbol(sym=sym, mask=Mask(known=known_x, value=value_x & known_x, width=WIDTH))
    y = MaskedSymbol.constant(constant, WIDTH)

    _, flags = ops.apply(op_name, x, y)
    valuation = Valuation(table, {sym: lam})
    cx, cy = valuation.concretize(x), valuation.concretize(y)

    if op_name in ("AND", "OR", "XOR"):
        result = concrete_op(op_name, cx, cy, WIDTH)
        concrete_zf, concrete_cf = (1 if result == 0 else 0), 0
    elif op_name == "ADD":
        result, concrete_cf, _ = add_with_carry(cx, cy, 0, WIDTH)
        concrete_zf = 1 if result == 0 else 0
    else:
        result, concrete_cf, _ = sub_with_borrow(cx, cy, 0, WIDTH)
        concrete_zf = 1 if result == 0 else 0

    if flags.zf is not None:
        assert flags.zf == concrete_zf
    if flags.cf is not None:
        assert flags.cf == concrete_cf


@settings(max_examples=150, deadline=None)
@given(
    offsets=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=5),
    lam=st.integers(min_value=0, max_value=255),
)
def test_offset_chain_soundness(offsets, lam):
    """Chained constant additions concretize to the arithmetic sum."""
    table = SymbolTable(width=WIDTH)
    ops = MaskedOps(table)
    sym = table.input_symbol("base")
    base = MaskedSymbol.symbol(sym, WIDTH)
    current = base
    total = 0
    for step in offsets:
        current, _ = ops.add(current, MaskedSymbol.constant(step, WIDTH))
        total += step
    valuation = Valuation(table, {sym: lam})
    assert valuation.concretize(current) == (lam + total) & 0xFF
