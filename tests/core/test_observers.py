"""Tests for observers and projections (paper §3.2, §5.3, Example 4).

Includes the executable version of Proposition 1: equal projection keys imply
equal concrete observations for every valuation of the symbols.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mask import Mask
from repro.core.masked import MaskedOps, MaskedSymbol
from repro.core.observers import (
    project_element_subset,
    CacheGeometry,
    ProjectionPolicy,
    project_element,
    project_value_set,
    standard_observers,
)
from repro.core.symbols import SymbolTable, Valuation
from repro.core.valueset import ValueSet

WIDTH = 32


@pytest.fixture()
def table():
    return SymbolTable(width=WIDTH)


class TestGeometry:
    def test_example_1(self):
        """Paper Example 1: 4KB pages, 64B lines, 4B banks on 32 bits."""
        geometry = CacheGeometry()
        observers = {o.name: o for o in standard_observers(geometry)}
        assert observers["page"].offset_bits == 12
        assert observers["block"].offset_bits == 6
        assert observers["bank"].offset_bits == 2
        assert observers["address"].offset_bits == 0

    def test_unit_bytes(self):
        geometry = CacheGeometry(line_bytes=32)
        observers = {o.name: o for o in standard_observers(geometry)}
        assert observers["block"].unit_bytes() == 32

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CacheGeometry(line_bytes=48)


class TestExample4:
    """Paper Example 4: projection of three masked symbols (3-bit words)."""

    def setup_method(self):
        self.table = SymbolTable(width=3)

    def test_projection_to_two_msbs_yields_three(self):
        s = self.table.input_symbol("s")
        t = self.table.input_symbol("t")
        u = self.table.input_symbol("u")
        values = ValueSet([
            MaskedSymbol(sym=s, mask=Mask.from_string("001")),
            MaskedSymbol(sym=t, mask=Mask.from_string("TT1")),
            MaskedSymbol(sym=u, mask=Mask.from_string("111")),
        ])
        label = project_value_set(values, offset_bits=1, table=self.table)
        assert label.count == 3

    def test_projection_to_lsb_is_singleton(self):
        s = self.table.input_symbol("s")
        t = self.table.input_symbol("t")
        u = self.table.input_symbol("u")
        elements = [
            MaskedSymbol(sym=s, mask=Mask.from_string("001")),
            MaskedSymbol(sym=t, mask=Mask.from_string("TT1")),
            MaskedSymbol(sym=u, mask=Mask.from_string("111")),
        ]
        keys = {project_element_subset(e, (0,)) for e in elements}
        assert len(keys) == 1  # determined by the masks alone: {1}


class TestOffsetRefinement:
    """The gather pattern: buf + k + 8i collapses at block granularity."""

    def _gather_addresses(self, table, iteration, spacing=8, keys=8):
        ops = MaskedOps(table)
        buf = MaskedSymbol.symbol(table.input_symbol("buf"), WIDTH)
        aligned, _ = ops.and_(buf, MaskedSymbol.constant(~0x3F & 0xFFFFFFFF, WIDTH))
        elements = []
        for k in range(keys):
            offset = MaskedSymbol.constant(k + iteration * spacing, WIDTH)
            address, _ = ops.add(aligned, offset)
            elements.append(address)
        return ValueSet(elements)

    def test_block_observer_sees_one_unit(self, table):
        for iteration in (0, 1, 9, 47, 383):
            addresses = self._gather_addresses(table, iteration)
            label = project_value_set(addresses, offset_bits=6, table=table)
            assert label.count == 1, f"iteration {iteration} leaked at block level"

    def test_address_observer_sees_eight(self, table):
        addresses = self._gather_addresses(table, iteration=12)
        label = project_value_set(addresses, offset_bits=0, table=table)
        assert label.count == 8

    def test_bank_observer_sees_two(self, table):
        """CacheBleed: 4-byte banks split the 8 candidate bytes in two."""
        for iteration in (0, 5, 100):
            addresses = self._gather_addresses(table, iteration)
            label = project_value_set(addresses, offset_bits=2, table=table)
            assert label.count == 2

    def test_plain_policy_loses_precision(self, table):
        """Ablation: without the offset refinement the collapse is lost for
        iterations whose offsets cross the first block."""
        addresses = self._gather_addresses(table, iteration=12)
        label = project_value_set(
            addresses, offset_bits=6, table=table, policy=ProjectionPolicy.PLAIN
        )
        assert label.count > 1

    def test_spread_bound_caps_page_observer(self, table):
        """Offsets spanning < 2 pages give at most 2 page observations."""
        addresses = self._gather_addresses(table, iteration=383)
        label = project_value_set(addresses, offset_bits=12, table=table)
        assert label.count <= 2


class TestProposition1:
    """Equal keys imply equal concrete projections, for every λ."""

    @settings(max_examples=300, deadline=None)
    @given(
        known_a=st.integers(min_value=0, max_value=255),
        value_a=st.integers(min_value=0, max_value=255),
        known_b=st.integers(min_value=0, max_value=255),
        value_b=st.integers(min_value=0, max_value=255),
        same_symbol=st.booleans(),
        offset_bits=st.integers(min_value=0, max_value=7),
        lam_a=st.integers(min_value=0, max_value=255),
        lam_b=st.integers(min_value=0, max_value=255),
    )
    def test_equal_keys_equal_projections(
        self, known_a, value_a, known_b, value_b, same_symbol, offset_bits, lam_a, lam_b
    ):
        table = SymbolTable(width=8)
        sym_a = table.input_symbol("a")
        sym_b = sym_a if same_symbol else table.input_symbol("b")
        element_a = MaskedSymbol(sym=sym_a, mask=Mask(known=known_a, value=value_a & known_a, width=8))
        element_b = MaskedSymbol(sym=sym_b, mask=Mask(known=known_b, value=value_b & known_b, width=8))

        key_a = project_element(element_a, offset_bits, table)
        key_b = project_element(element_b, offset_bits, table)
        if key_a == key_b:
            valuation = Valuation(table, {sym_a: lam_a, sym_b: lam_b})
            concrete_a = valuation.concretize(element_a) >> offset_bits
            concrete_b = valuation.concretize(element_b) >> offset_bits
            assert concrete_a == concrete_b

    @settings(max_examples=200, deadline=None)
    @given(
        offsets=st.lists(st.integers(min_value=0, max_value=4000), min_size=2, max_size=8),
        offset_bits=st.integers(min_value=1, max_value=12),
        lam=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_offset_refined_keys_sound(self, offsets, offset_bits, lam):
        """Derived pointers with equal refined keys project equally, ∀λ."""
        table = SymbolTable(width=WIDTH)
        ops = MaskedOps(table)
        sym = table.input_symbol("base")
        base = MaskedSymbol.symbol(sym, WIDTH)
        aligned, _ = ops.and_(base, MaskedSymbol.constant(~0x3F & 0xFFFFFFFF, WIDTH))
        derived = []
        for offset in offsets:
            address, _ = ops.add(aligned, MaskedSymbol.constant(offset, WIDTH))
            derived.append(address)
        keys = [project_element(d, offset_bits, table) for d in derived]
        valuation = Valuation(table, {sym: lam})
        projections = [valuation.concretize(d) >> offset_bits for d in derived]
        for i, key_i in enumerate(keys):
            for j, key_j in enumerate(keys):
                if key_i == key_j:
                    assert projections[i] == projections[j]

    @settings(max_examples=200, deadline=None)
    @given(
        offsets=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=8),
        offset_bits=st.integers(min_value=1, max_value=9),
        lam=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_spread_bound_is_sound(self, offsets, offset_bits, lam):
        """The count bound dominates the true observation count, ∀λ."""
        table = SymbolTable(width=WIDTH)
        ops = MaskedOps(table)
        sym = table.input_symbol("base")
        base = MaskedSymbol.symbol(sym, WIDTH)
        derived = []
        for offset in offsets:
            address, _ = ops.add(base, MaskedSymbol.constant(offset, WIDTH))
            derived.append(address)
        values = ValueSet(derived)
        label = project_value_set(values, offset_bits, table)
        valuation = Valuation(table, {sym: lam})
        concrete = {valuation.concretize(d) >> offset_bits for d in derived}
        assert len(concrete) <= label.count
