"""Trace-/time-based adversary bounds (core/adversary.py): the DAG-level
derivations, the block-trace determinism argument across replacement
policies, and the end-to-end analyzer/validator integration."""

import pytest

from repro.analysis.analyzer import analyze
from repro.analysis.config import AnalysisConfig, AnalysisError, InputSpec
from repro.analysis.validation import ConcreteValidator
from repro.core.adversary import (
    ADVERSARY_MODELS,
    AdversaryBound,
    PrimeProbeSpy,
    derive_adversary_bounds,
    probe_adversary_count,
    spy_probe_view,
    time_adversary_count,
    trace_adversary_count,
)
from repro.core.observers import AccessKind, ProjectedLabel
from repro.core.tracedag import TraceDAG
from repro.isa import parse_asm
from repro.isa.registers import EAX, ESI
from repro.vm.cache import POLICIES, CacheConfig, SetAssociativeCache
from repro.vm.tracer import Trace


def label(*keys, count=None):
    return ProjectedLabel(keys=frozenset(keys), count=count or len(keys))


A, B, C = label("A"), label("B"), label("C")


def _linear_dag(*accesses):
    dag = TraceDAG()
    cursor = dag.root_cursor()
    for access in accesses:
        cursor = dag.access(cursor, access)
    return dag, dag.finalize(cursor)


class TestAdversaryBound:
    def test_bits(self):
        bound = AdversaryBound(kind=AccessKind.DATA, model="trace", count=8)
        assert bound.bits == 3.0
        assert not bound.is_non_interferent

    def test_non_interference(self):
        bound = AdversaryBound(kind=AccessKind.DATA, model="time", count=1)
        assert bound.is_non_interferent

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            AdversaryBound(kind=AccessKind.DATA, model="power", count=1)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            AdversaryBound(kind=AccessKind.DATA, model="trace", count=0)


class TestPathLengthSpan:
    def test_empty_trace(self):
        dag = TraceDAG()
        ends = dag.finalize(dag.root_cursor())
        assert dag.path_length_span(ends) == (0, 0)

    def test_single_path_counts_accesses(self):
        dag, ends = _linear_dag(A, A, A, B)
        assert dag.path_length_span(ends) == (4, 4)

    def test_branching_lengths(self):
        """Two merged arms with 2 vs 5 accesses span [2, 5]."""
        dag = TraceDAG()
        short = dag.access(dag.access(dag.root_cursor(), A), B)
        long = dag.root_cursor()
        for access in (A, A, A, A, C):
            long = dag.access(long, access)
        ends = dag.finalize(dag.merge(short, long))
        assert dag.path_length_span(ends) == (2, 5)


class TestDerivations:
    def test_trace_bound_equals_block_count(self):
        dag, ends = _linear_dag(label("A", "B"), C)
        assert trace_adversary_count(dag, ends) == dag.count(ends)

    def test_time_bound_constant_length(self):
        """Single achievable length n: at most n+1 (hits, misses) pairs."""
        dag, ends = _linear_dag(label("A", "B", "C", "D", "E", "F"), A, B)
        # trace bound is 6, but all traces have length 3 → 4 timing pairs.
        assert trace_adversary_count(dag, ends) == 6
        assert time_adversary_count(dag, ends) == 4

    def test_time_bound_never_exceeds_trace_bound(self):
        dag, ends = _linear_dag(label("A", "B"))
        # length 1 everywhere → 2 pairs, but only 2 block traces anyway.
        assert time_adversary_count(dag, ends) <= trace_adversary_count(dag, ends)

    def test_time_bound_empty_trace(self):
        dag = TraceDAG()
        ends = dag.finalize(dag.root_cursor())
        assert time_adversary_count(dag, ends) == 1

    def test_derive_selected_models(self):
        dag, ends = _linear_dag(A, B)
        bounds = derive_adversary_bounds(dag, ends, AccessKind.DATA, ("trace",))
        assert [(b.model, b.count) for b in bounds] == [("trace", 1)]

    def test_derive_rejects_unknown_model(self):
        dag, ends = _linear_dag(A)
        with pytest.raises(ValueError):
            derive_adversary_bounds(dag, ends, AccessKind.DATA, ("tempest",))

    def test_probe_bound_equals_block_count(self):
        """The spy's probe vector is a deterministic function of the
        interleaved block trace, so distinct vectors ≤ distinct traces."""
        dag, ends = _linear_dag(label("A", "B"), C, label("A", "C"))
        assert probe_adversary_count(dag, ends) == dag.count(ends)

    def test_derive_probe_model(self):
        dag, ends = _linear_dag(A, label("B", "C"))
        bounds = derive_adversary_bounds(dag, ends, AccessKind.SHARED, ("probe",))
        assert [(b.model, b.count) for b in bounds] == [("probe", 2)]


class TestPrimeProbeSpy:
    """The concrete active adversary: prime the shared LLC, run the victim
    on another core, then probe for evictions."""

    def _hierarchy(self):
        from repro.vm.cache import CacheHierarchy, default_hierarchy_spec

        return CacheHierarchy(default_hierarchy_spec(line_bytes=64))

    def test_spy_covers_every_llc_line(self):
        hierarchy = self._hierarchy()
        spy = PrimeProbeSpy(hierarchy)
        config = hierarchy.shared.config
        assert len(spy.addresses) == config.num_sets * config.associativity
        spy.prime()
        assert all(spy.probe())  # untouched LLC: every probe hits

    def test_victim_evictions_visible(self):
        """A victim streaming through one set evicts primed lines there."""
        hierarchy = self._hierarchy()
        spy = PrimeProbeSpy(hierarchy)
        spy.prime()
        config = hierarchy.shared.config
        ways = config.associativity
        # Enough distinct victim blocks mapping to set 0 to evict the spy.
        for tag in range(ways + 1):
            hierarchy.access((tag << (config.set_bits + config.offset_bits)),
                             core=0)
        vector = spy.probe()
        assert not all(vector)

    def test_probe_view_distinguishes_victim_sets(self):
        """Victims touching different LLC sets yield different vectors."""
        line = 64
        num_sets = self._hierarchy().shared.config.num_sets
        views = {
            spy_probe_view([set_index * line] * 8, self._hierarchy())
            for set_index in range(min(4, num_sets))
        }
        assert len(views) == 4

    def test_probe_view_deterministic(self):
        addresses = [0, 64, 4096, 64, 8192, 0]
        assert (spy_probe_view(addresses, self._hierarchy())
                == spy_probe_view(addresses, self._hierarchy()))

    def test_spy_requires_shared_level(self):
        from repro.vm.cache import CacheHierarchy, HierarchySpec, LevelSpec

        flat = CacheHierarchy(HierarchySpec(
            l1=LevelSpec(num_sets=8, associativity=2), shared=None, cores=1))
        with pytest.raises(ValueError):
            PrimeProbeSpy(flat)


class TestBlockTraceDeterminism:
    """The §3.2 argument the derivations rest on, executable: equal block
    views imply equal hit/miss traces — for every replacement policy."""

    def _trace(self, addresses):
        trace = Trace()
        for addr in addresses:
            trace.record("R", addr, 4)
        return trace

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_equal_block_views_equal_hit_miss_traces(self, policy):
        config = CacheConfig(line_bytes=64, num_sets=2, associativity=2)
        blocks = [0, 1, 5, 1, 9, 0, 5, 9, 1, 0, 3, 5]
        # Two traces touching the same blocks at different line offsets.
        first = self._trace([b * 64 + 4 for b in blocks])
        second = self._trace([b * 64 + 60 for b in blocks])
        assert first.view("D", 6) == second.view("D", 6)
        first_hm = first.hit_miss_view("D", SetAssociativeCache(config, policy))
        second_hm = second.hit_miss_view("D", SetAssociativeCache(config, policy))
        assert first_hm == second_hm
        assert first.time_view("D", SetAssociativeCache(config, policy)) == \
               second.time_view("D", SetAssociativeCache(config, policy))

    def test_time_view_sums_to_length(self):
        trace = self._trace([0, 64, 0, 128])
        hits, misses = trace.time_view("D", SetAssociativeCache())
        assert hits + misses == 4


ASM = """
.text
main:
    test eax, eax
    je .skip
    add esi, 64
.skip:
    mov ebx, [esi]
    ret
"""


class TestAnalyzerIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        image = parse_asm(ASM).assemble()
        spec = InputSpec(entry="main", registers=(
            InputSpec.reg_high(EAX, [0, 1]),
            InputSpec.reg_symbol(ESI, "x"),
        ))
        return analyze(image, spec, AnalysisConfig())

    def test_adversary_bounds_recorded_per_kind(self, result):
        recorded = set(result.report.adversaries)
        assert (AccessKind.DATA, "trace") in recorded
        assert (AccessKind.INSTRUCTION, "time") in recorded

    def test_trace_bound_matches_block_count(self, result):
        for kind in (AccessKind.INSTRUCTION, AccessKind.DATA):
            assert (result.report.adversary_bound(kind, "trace").count
                    == result.report.bound(kind, "block").count)

    def test_adversary_hierarchy(self, result):
        """time ≤ trace ≤ block-address observations, per kind."""
        for kind in (AccessKind.INSTRUCTION, AccessKind.DATA):
            time = result.report.adversary_bound(kind, "time").count
            trace = result.report.adversary_bound(kind, "trace").count
            assert time <= trace

    def test_models_can_be_disabled(self):
        image = parse_asm(ASM).assemble()
        spec = InputSpec(entry="main", registers=(
            InputSpec.reg_high(EAX, [0, 1]),
            InputSpec.reg_symbol(ESI, "x"),
        ))
        result = analyze(image, spec, AnalysisConfig(adversary_models=()))
        assert result.report.adversaries == {}

    def test_config_rejects_unknown_model(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(adversary_models=("power",))

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(cache_policy="belady")

    def test_concrete_validation_across_policies(self, result):
        image = parse_asm(ASM).assemble()
        validator = ConcreteValidator(image, result.spec)
        outcome = validator.check_adversaries(
            result, layouts=[{"x": 0x9000000}, {"x": 0x9000040}],
            policies=tuple(sorted(POLICIES)))
        # 3 policies x 2 layouts x 4 (kind, model) bounds
        assert outcome.checked == 3 * 2 * 4
        assert outcome.ok, outcome.violations

    def test_report_formats_adversary_table(self, result):
        table = result.report.format_full_table()
        assert "Adversary" in table and "trace" in table and "time" in table
        assert "ADVERSARY_MODELS" not in table  # sanity
        assert set(ADVERSARY_MODELS) == {"trace", "time", "probe"}


class TestCaseStudyConcreteValidation:
    """The grid's policy axis, exercised for real: the case-study targets'
    trace-/time-adversary bounds must dominate the concrete hit/miss and
    timing views under *every* registered replacement policy."""

    LAYOUTS = {
        "sqam_153": {"rp": 0x9000000, "tmp": 0x9001000,
                     "bp": 0x9002000, "mp": 0x9003000},
        "lookup_161": {"bp": 0x9000000, "bsize": 0x9000100},
    }

    @pytest.mark.parametrize("factory_name", ["sqam_target", "lookup_target"])
    def test_bounds_hold_under_every_policy(self, factory_name):
        from repro.casestudy import targets

        target = getattr(targets, factory_name)()
        result = target.analyze()
        validator = ConcreteValidator(target.image, target.spec)
        outcome = validator.check_adversaries(
            result, [self.LAYOUTS[target.name]],
            policies=tuple(sorted(POLICIES)))
        assert outcome.checked == len(POLICIES) * len(result.report.adversaries)
        assert outcome.ok, outcome.violations
