"""Hash-consing layer: interned construction must be observationally
equivalent to fresh construction.

The abstract domain interns masks, masked symbols, and value sets per value
key.  Correctness never depends on the sharing: equality keeps a value
fallback, hashes equal the historical dataclass formulas (so frozenset
iteration orders — and with them fresh-symbol allocation order and every
figure count — are unchanged), and clearing the tables mid-flight only
loses sharing.  These properties are what make the per-run table clear in
``AnalysisContext`` sound, and they are exercised here directly, with
hypothesis driving the mask shapes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import masked as masked_mod
from repro.core import valueset as valueset_mod
from repro.core.mask import Mask
from repro.core.masked import FlagBits, MaskedOps, MaskedSymbol
from repro.core.symbols import SymbolTable
from repro.core.valueset import PrecisionLoss, ValueSet, ValueSetOps

WIDTH = 32
FULL = (1 << WIDTH) - 1


def masks(width=WIDTH):
    """Random well-formed masks: value bits only on known positions."""
    return st.tuples(
        st.integers(min_value=0, max_value=(1 << width) - 1),
        st.integers(min_value=0, max_value=(1 << width) - 1),
    ).map(lambda pair: Mask(known=pair[0], value=pair[1] & pair[0],
                            width=width))


def masked_symbols():
    constants = st.integers(min_value=0, max_value=FULL).map(
        lambda value: MaskedSymbol.constant(value, WIDTH))
    symbolic = st.tuples(st.integers(min_value=0, max_value=7), masks()).map(
        lambda pair: MaskedSymbol(sym=pair[0], mask=pair[1]))
    return st.one_of(constants, symbolic)


class TestMaskInterning:
    @given(masks())
    @settings(max_examples=200)
    def test_construction_is_canonical(self, mask):
        again = Mask(known=mask.known, value=mask.value, width=mask.width)
        assert again is mask

    @given(masks())
    @settings(max_examples=200)
    def test_equivalent_after_clear(self, mask):
        """A post-clear rebuild is a distinct but indistinguishable object."""
        valueset_mod.intern_clear()
        rebuilt = Mask(known=mask.known, value=mask.value, width=mask.width)
        assert rebuilt is not mask  # sharing was lost...
        assert rebuilt == mask      # ...observably nothing else
        assert hash(rebuilt) == hash(mask)
        assert mask in {rebuilt} and rebuilt in {mask}

    @given(masks())
    @settings(max_examples=200)
    def test_hash_matches_dataclass_formula(self, mask):
        """The precomputed hash is the historical field-tuple hash, which is
        what keeps frozenset iteration orders (and therefore fresh-symbol
        allocation order in set products) bit-identical to the seed."""
        assert hash(mask) == hash((mask.known, mask.value, mask.width))

    def test_validation_still_enforced(self):
        import pytest
        with pytest.raises(ValueError):
            Mask(known=0, value=1, width=WIDTH)
        with pytest.raises(ValueError):
            Mask(known=1 << WIDTH, value=0, width=WIDTH)


class TestMaskedSymbolInterning:
    @given(st.integers(min_value=0, max_value=31), masks())
    @settings(max_examples=200)
    def test_construction_is_canonical(self, sym, mask):
        first = MaskedSymbol(sym=sym, mask=mask)
        assert MaskedSymbol(sym=sym, mask=mask) is first
        assert hash(first) == hash((sym, mask))

    @given(st.integers(min_value=0, max_value=FULL))
    @settings(max_examples=100)
    def test_constants_canonical_and_equivalent_after_clear(self, value):
        first = MaskedSymbol.constant(value, WIDTH)
        assert MaskedSymbol.constant(value, WIDTH) is first
        valueset_mod.intern_clear()
        rebuilt = MaskedSymbol.constant(value, WIDTH)
        assert rebuilt == first and hash(rebuilt) == hash(first)
        assert len({first, rebuilt}) == 1

    def test_fresh_derived_skips_the_table(self):
        """fresh_derived builds around a brand-new symbol id without an
        intern probe, but hashes/compares exactly like normal construction."""
        mask = Mask.top(WIDTH)
        fresh = MaskedSymbol.fresh_derived(12345, mask)
        interned = MaskedSymbol(sym=12345, mask=mask)
        assert fresh == interned and hash(fresh) == hash(interned)
        assert len({fresh, interned}) == 1

    def test_flagbits_interned(self):
        assert FlagBits(zf=1, cf=0) is FlagBits(zf=1, cf=0)
        assert FlagBits() is FlagBits(zf=None, cf=None, sf=None, of=None)
        assert hash(FlagBits(zf=1)) == hash((1, None, None, None))


class TestValueSetInterning:
    @given(st.lists(masked_symbols(), min_size=1, max_size=6))
    @settings(max_examples=200)
    def test_element_order_blind_canonicalization(self, elements):
        forward = ValueSet(elements)
        backward = ValueSet(list(reversed(elements)))
        assert forward is backward
        assert forward._id == backward._id
        assert hash(forward) == hash(frozenset(elements))

    @given(st.lists(masked_symbols(), min_size=1, max_size=5),
           st.lists(masked_symbols(), min_size=1, max_size=5))
    @settings(max_examples=200)
    def test_join_equals_rebuilt_union(self, left, right):
        a, b = ValueSet(left), ValueSet(right)
        joined = a.join(b, cap=64)
        assert joined.elements == a.elements | b.elements
        # The fast path may return an existing object; the result must be
        # the canonical set for the union either way.
        assert joined is ValueSet(a.elements | b.elements)

    @given(st.lists(masked_symbols(), min_size=2, max_size=6))
    @settings(max_examples=100)
    def test_join_subset_fast_path_returns_superset(self, elements):
        whole = ValueSet(elements)
        part = ValueSet(list(elements)[:1])
        assert whole.join(part, cap=64) is whole
        assert part.join(whole, cap=64) is whole
        assert whole.subsumes(part) and whole.subsumes(whole)

    def test_join_cap_enforced_even_on_subset_fast_path(self):
        whole = ValueSet.constants(range(8), WIDTH)
        part = ValueSet.constants(range(2), WIDTH)
        import pytest
        with pytest.raises(PrecisionLoss):
            whole.join(part, cap=4)
        with pytest.raises(PrecisionLoss):
            whole.join(whole, cap=4)

    @given(st.lists(st.integers(min_value=0, max_value=FULL),
                    min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_equivalent_after_clear(self, values):
        first = ValueSet.constants(values, WIDTH)
        valueset_mod.intern_clear()
        rebuilt = ValueSet.constants(values, WIDTH)
        assert rebuilt == first and hash(rebuilt) == hash(first)
        assert rebuilt._id != first._id  # ids are never reused


class TestLiftedOpEquivalence:
    """Interned and post-clear operands produce equal lifted results."""

    @given(st.lists(st.integers(min_value=0, max_value=FULL),
                    min_size=1, max_size=4),
           st.lists(st.integers(min_value=0, max_value=FULL),
                    min_size=1, max_size=4),
           st.sampled_from(["AND", "OR", "XOR", "ADD", "SUB", "MUL"]))
    @settings(max_examples=60)
    def test_binary_ops_value_equal_across_intern_generations(
            self, xs, ys, op_name):
        def run():
            ops = ValueSetOps(MaskedOps(SymbolTable(width=WIDTH)), cap=64)
            result, flags = ops.apply(
                op_name, ValueSet.constants(xs, WIDTH),
                ValueSet.constants(ys, WIDTH))
            return result.constant_values(), flags

        first_values, first_flags = run()
        valueset_mod.intern_clear()
        second_values, second_flags = run()
        assert first_values == second_values
        assert first_flags == second_flags

    def test_unary_lift_memoized(self):
        ops = ValueSetOps(MaskedOps(SymbolTable(width=WIDTH)), cap=64)
        operand = ValueSet.constants([1, 2, 3], WIDTH)
        first = ops.not_(operand)
        hits_before = ops.memo_hits
        assert ops.not_(operand) is first
        assert ops.memo_hits == hits_before + 1
        # NEG on the same operand is a distinct memo entry.
        assert ops.neg(operand) is not first

    def test_shift_lift_shares_id_keyed_memo(self):
        ops = ValueSetOps(MaskedOps(SymbolTable(width=WIDTH)), cap=64)
        operand = ValueSet.constants([4, 8], WIDTH)
        amounts = ValueSet.constant(2, WIDTH)
        first = ops.shift("SHR", operand, amounts)
        hits_before = ops.memo_hits
        assert ops.shift("SHR", operand, amounts) is first
        assert ops.memo_hits == hits_before + 1
        assert first[0].constant_values() == {1, 2}

    def test_shift_rejects_symbolic_amounts(self):
        import pytest
        table = SymbolTable(width=WIDTH)
        ops = ValueSetOps(MaskedOps(table), cap=64)
        symbolic = ValueSet.symbol(table.input_symbol("count"), WIDTH)
        with pytest.raises(ValueError):
            ops.shift("SHL", ValueSet.constant(1, WIDTH), symbolic)

    def test_xor_bulk_matches_pairwise_xor(self):
        """The inlined XOR product path agrees with the per-pair transformer
        on results and flag outcomes for mixed constant/symbolic sets."""
        table = SymbolTable(width=WIDTH)
        masked_ops = MaskedOps(table)
        x_elements = [
            MaskedSymbol.constant(0x0F, WIDTH),
            MaskedSymbol(sym=table.input_symbol("a"),
                         mask=Mask.from_string("T" * 24 + "0" * 8)),
        ]
        y_elements = [
            MaskedSymbol.constant(0xF0, WIDTH),
            MaskedSymbol(sym=table.input_symbol("b"), mask=Mask.top(WIDTH)),
        ]
        results, flags = masked_ops.xor_bulk(x_elements, y_elements)
        assert len(results) == 4
        constants = {r.value for r in results if r.is_constant}
        assert constants == {0xFF}
        # Flags of the concrete pair are exact; symbolic pairs leave zf open.
        assert FlagBits(zf=0, cf=0, sf=0, of=0) in flags


class TestPickling:
    """Interned objects pickle by value and re-intern on load."""

    @given(masked_symbols())
    @settings(max_examples=50)
    def test_masked_symbol_roundtrip(self, element):
        import pickle
        clone = pickle.loads(pickle.dumps(element))
        assert clone == element and hash(clone) == hash(element)
        assert clone is element  # re-interned to the canonical instance

    def test_valueset_and_flags_roundtrip(self):
        import pickle
        values = ValueSet.constants([1, 2, 3], WIDTH)
        clone = pickle.loads(pickle.dumps(values))
        assert clone is values
        flags = FlagBits(zf=1, cf=0)
        assert pickle.loads(pickle.dumps(flags)) is flags


class TestInternCounters:
    def test_counters_monotonic_and_clear_preserves_them(self):
        hits_before, misses_before = valueset_mod.intern_counters()
        ValueSet.constants([11, 22, 33], WIDTH)
        ValueSet.constants([11, 22, 33], WIDTH)
        hits_after, misses_after = valueset_mod.intern_counters()
        assert hits_after > hits_before
        assert misses_after >= misses_before
        valueset_mod.intern_clear()
        assert valueset_mod.intern_counters() == (hits_after, misses_after)
        assert masked_mod.intern_counters()[1] >= 0
