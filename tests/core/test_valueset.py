"""Unit tests for the lifted masked symbol domain M♯."""

import pytest

from repro.core.masked import MaskedOps
from repro.core.symbols import SymbolTable
from repro.core.valueset import PrecisionLoss, ValueSet, ValueSetOps

WIDTH = 16


@pytest.fixture()
def table():
    return SymbolTable(width=WIDTH)


@pytest.fixture()
def ops(table):
    return ValueSetOps(MaskedOps(table), cap=16)


class TestConstruction:
    def test_constant(self):
        vs = ValueSet.constant(5, WIDTH)
        assert vs.is_constant
        assert vs.value == 5

    def test_constants_high_data(self):
        vs = ValueSet.constants(range(8), WIDTH)
        assert len(vs) == 8
        assert vs.constant_values() == set(range(8))

    def test_symbol(self, table):
        vs = ValueSet.symbol(table.input_symbol("p"), WIDTH)
        assert vs.is_singleton
        assert vs.has_symbolic
        assert not vs.is_constant

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ValueSet([])

    def test_value_requires_constant(self, table):
        vs = ValueSet.symbol(table.input_symbol("p"), WIDTH)
        with pytest.raises(ValueError):
            _ = vs.value

    def test_constant_values_rejects_symbolic(self, table):
        vs = ValueSet.symbol(table.input_symbol("p"), WIDTH)
        with pytest.raises(ValueError):
            vs.constant_values()


class TestLattice:
    def test_join_unions(self):
        a = ValueSet.constants([1, 2], WIDTH)
        b = ValueSet.constants([2, 3], WIDTH)
        assert a.join(b).constant_values() == {1, 2, 3}

    def test_join_cap(self):
        a = ValueSet.constants(range(10), WIDTH)
        b = ValueSet.constants(range(10, 20), WIDTH)
        with pytest.raises(PrecisionLoss):
            a.join(b, cap=15)

    def test_subsumes(self):
        a = ValueSet.constants([1, 2, 3], WIDTH)
        b = ValueSet.constants([1, 2], WIDTH)
        assert a.subsumes(b)
        assert not b.subsumes(a)


class TestLiftedOps:
    def test_pairwise_product(self, ops):
        """Example 3 flavour: {s, s+64} from a secret-dependent addition."""
        x = ValueSet.constants([0, 64], WIDTH)
        y = ValueSet.constants([100], WIDTH)
        result, _ = ops.add(x, y)
        assert result.constant_values() == {100, 164}

    def test_secret_plus_symbol(self, ops, table):
        pointer = ValueSet.symbol(table.input_symbol("x"), WIDTH)
        secret = ValueSet.constants([0, 64], WIDTH)
        result, _ = ops.add(pointer, secret)
        assert len(result) == 2  # {s, s+64}: leakage bound 1 bit

    def test_cmp_flag_union(self, ops):
        x = ValueSet.constants([0, 1], WIDTH)
        y = ValueSet.constant(1, WIDTH)
        outcomes = {flag.zf for flag in ops.cmp(x, y)}
        assert outcomes == {0, 1}

    def test_cmp_determined(self, ops):
        x = ValueSet.constants([2, 3], WIDTH)
        y = ValueSet.constant(1, WIDTH)
        outcomes = {flag.zf for flag in ops.cmp(x, y)}
        assert outcomes == {0}

    def test_test_instruction(self, ops):
        x = ValueSet.constant(0, WIDTH)
        outcomes = {flag.zf for flag in ops.test(x, x)}
        assert outcomes == {1}

    def test_shift_requires_constant_counts(self, ops, table):
        x = ValueSet.constant(1, WIDTH)
        counts = ValueSet.symbol(table.input_symbol("n"), WIDTH)
        with pytest.raises(ValueError):
            ops.shift("SHL", x, counts)

    def test_shift_set_of_counts(self, ops):
        x = ValueSet.constant(1, WIDTH)
        counts = ValueSet.constants([0, 1, 2], WIDTH)
        result, _ = ops.shift("SHL", x, counts)
        assert result.constant_values() == {1, 2, 4}

    def test_mul_lifted(self, ops):
        x = ValueSet.constants([2, 3], WIDTH)
        y = ValueSet.constant(8, WIDTH)
        result, _ = ops.mul(x, y)
        assert result.constant_values() == {16, 24}

    def test_cap_enforced(self, table):
        ops = ValueSetOps(MaskedOps(table), cap=4)
        x = ValueSet.constants(range(4), WIDTH)
        y = ValueSet.constants([10, 20], WIDTH)
        with pytest.raises(PrecisionLoss):
            ops.add(x, y)

    def test_unary_ops(self, ops):
        x = ValueSet.constants([0, 1], WIDTH)
        noted, _ = ops.not_(x)
        assert noted.constant_values() == {0xFFFF, 0xFFFE}
        negated, _ = ops.neg(x)
        assert negated.constant_values() == {0, 0xFFFF}

    def test_apply_dispatch(self, ops):
        x = ValueSet.constant(6, WIDTH)
        y = ValueSet.constant(3, WIDTH)
        assert ops.apply("SUB", x, y)[0].value == 3
        assert ops.apply("AND", x, y)[0].value == 2
        with pytest.raises(ValueError):
            ops.apply("BOGUS", x, y)
