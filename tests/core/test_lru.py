"""LRUCache: the shared bounded cache of the compile tier."""

import pytest

from repro.core.lru import DEFAULT_CACHE_CAP, LRUCache


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert len(cache) == 1

    def test_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.evictions == 0

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.get("a")          # refresh "a": "b" is now the oldest
        cache.put("d", "D")
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("d") == "D"
        assert cache.evictions == 1
        assert len(cache) == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)       # evicts "b", not the refreshed "a"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_put_existing_key_updates_and_refreshes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)       # evicts "b"
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_eviction_one_at_a_time(self):
        cache = LRUCache(3)
        overflow = 5
        for index in range(3 + overflow):
            cache.put(index, index)
        assert cache.evictions == overflow
        assert len(cache) == 3
        # The survivors are exactly the most recent cap-many keys.
        survivors = [index for index in range(3 + overflow)
                     if cache.get(index) is not None]
        assert survivors == [overflow, overflow + 1, overflow + 2]

    def test_clear_preserves_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)
        cache.put("c", 3)
        hits, misses, evictions = cache.hits, cache.misses, cache.evictions
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.evictions) == (
            hits, misses, evictions)

    def test_default_cap_is_sane(self):
        assert DEFAULT_CACHE_CAP >= 16
