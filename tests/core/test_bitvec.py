"""Unit tests for fixed-width bitvector helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitvec

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestBasics:
    def test_mask_of(self):
        assert bitvec.mask_of(8) == 0xFF
        assert bitvec.mask_of(32) == 0xFFFFFFFF

    def test_mask_of_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bitvec.mask_of(0)

    def test_truncate(self):
        assert bitvec.truncate(0x1_0000_0001, 32) == 1
        assert bitvec.truncate(-1, 32) == 0xFFFFFFFF

    def test_signed_roundtrip(self):
        assert bitvec.to_signed(0xFFFFFFFF, 32) == -1
        assert bitvec.to_signed(0x7FFFFFFF, 32) == 0x7FFFFFFF
        assert bitvec.from_signed(-1, 32) == 0xFFFFFFFF

    def test_sign_bit(self):
        assert bitvec.sign_bit(0x80000000, 32) == 1
        assert bitvec.sign_bit(0x7FFFFFFF, 32) == 0

    def test_bit_helpers(self):
        assert bitvec.bit(0b1010, 1) == 1
        assert bitvec.bit(0b1010, 0) == 0
        assert bitvec.set_bit(0, 3, 1) == 8
        assert bitvec.set_bit(0xF, 0, 0) == 0xE

    def test_low_ones(self):
        assert bitvec.low_ones(0) == 0
        assert bitvec.low_ones(6) == 0x3F
        with pytest.raises(ValueError):
            bitvec.low_ones(-1)

    def test_popcount(self):
        assert bitvec.popcount(0) == 0
        assert bitvec.popcount(0xFF) == 8

    def test_rotates(self):
        assert bitvec.rotate_left(0x80000000, 1, 32) == 1
        assert bitvec.rotate_right(1, 1, 32) == 0x80000000


class TestArithmetic:
    def test_add_with_carry_basic(self):
        result, carry, overflow = bitvec.add_with_carry(1, 2, 0, 32)
        assert (result, carry, overflow) == (3, 0, 0)

    def test_add_carry_out(self):
        result, carry, _ = bitvec.add_with_carry(0xFFFFFFFF, 1, 0, 32)
        assert (result, carry) == (0, 1)

    def test_add_signed_overflow(self):
        _, _, overflow = bitvec.add_with_carry(0x7FFFFFFF, 1, 0, 32)
        assert overflow == 1

    def test_sub_borrow(self):
        result, borrow, _ = bitvec.sub_with_borrow(0, 1, 0, 32)
        assert (result, borrow) == (0xFFFFFFFF, 1)

    def test_sub_no_borrow(self):
        result, borrow, _ = bitvec.sub_with_borrow(5, 3, 0, 32)
        assert (result, borrow) == (2, 0)

    @given(WORDS, WORDS)
    def test_add_matches_python(self, x, y):
        result, carry, _ = bitvec.add_with_carry(x, y, 0, 32)
        assert result == (x + y) & 0xFFFFFFFF
        assert carry == ((x + y) >> 32)

    @given(WORDS, WORDS)
    def test_sub_matches_python(self, x, y):
        result, borrow, _ = bitvec.sub_with_borrow(x, y, 0, 32)
        assert result == (x - y) & 0xFFFFFFFF
        assert borrow == (1 if x < y else 0)

    @given(WORDS, WORDS, st.integers(min_value=0, max_value=1))
    def test_add_sub_inverse(self, x, y, carry):
        added, _, _ = bitvec.add_with_carry(x, y, carry, 32)
        subbed, _, _ = bitvec.sub_with_borrow(added, y, carry, 32)
        assert subbed == x
