"""Tests for the memory trace domain T♯ (paper §6, Example 9 / Figure 4)."""

from repro.core.observers import ProjectedLabel
from repro.core.tracedag import TraceDAG


def label(*keys, count=None):
    return ProjectedLabel(keys=frozenset(keys), count=count or len(keys))


A, B, C, D = label("A"), label("B"), label("C"), label("D")


class TestLinearTraces:
    def test_single_path_counts_one(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        for access in (A, B, C):
            cursor = dag.access(cursor, access)
        ends = dag.finalize(cursor)
        assert dag.count(ends) == 1
        assert dag.count(ends, stuttering=True) == 1

    def test_multi_unit_access_multiplies(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, label("A", "B"))
        cursor = dag.access(cursor, label("C", "D", "E"))
        ends = dag.finalize(cursor)
        assert dag.count(ends) == 6

    def test_refined_count_used(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, label("A", "B", "C", count=2))
        ends = dag.finalize(cursor)
        assert dag.count(ends) == 2

    def test_empty_trace_counts_one(self):
        dag = TraceDAG()
        ends = dag.finalize(dag.root_cursor())
        assert dag.count(ends) == 1


class TestStuttering:
    def test_repetition_recorded_not_duplicated(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        for access in (A, A, A, B):
            cursor = dag.access(cursor, access)
        ends = dag.finalize(cursor)
        assert dag.count(ends) == 1
        assert dag.count(ends, stuttering=True) == 1
        # The A-run is one vertex with run=3, not three vertices.
        assert dag.size == 3  # root + A + B

    def test_figure_4_block_vs_bblock(self):
        """Example 9: both arms stay in block A; 5 vs 3 accesses.

        The block observer distinguishes the run lengths (1 bit); the
        stuttering b-block observer does not (0 bits)."""
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        taken = cursor
        for _ in range(4):
            taken = dag.access(taken, A)
        fallthrough = dag.access(dag.access(cursor, A), A)
        merged = dag.merge(taken, fallthrough)
        ends = dag.finalize(merged)
        assert dag.count(ends) == 2
        assert dag.count(ends, stuttering=True) == 1

    def test_figure_4_address_observer(self):
        """Same branch under the address observer: distinct vertices, 2 traces."""
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, label("i1"))
        taken = cursor
        for name in ("i2", "i3", "i4", "i5"):
            taken = dag.access(taken, label(name))
        fallthrough = dag.access(cursor, label("i2"))
        merged = dag.merge(taken, fallthrough)
        merged = dag.access(merged, label("i6"))
        ends = dag.finalize(merged)
        assert dag.count(ends) == 2
        assert dag.count(ends, stuttering=True) == 2

    def test_figure_15a_aba_pattern(self):
        """Taken path: A,B,A; fall-through: A only.  Both observers see
        exactly two traces (this is the rep-splitting refinement: the naive
        shared-repetition-set reading would count four)."""
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)  # shared prefix in block A
        taken = dag.access(cursor, B)
        taken = dag.access(taken, A)
        fallthrough = dag.access(dag.access(cursor, A), A)  # stays in A
        merged = dag.merge(taken, fallthrough)
        ends = dag.finalize(merged)
        assert dag.count(ends) == 2
        assert dag.count(ends, stuttering=True) == 2

    def test_common_tail_after_different_runs(self):
        """Figure 7b shape: arms differ only in run length inside block A,
        then both continue into block B: block sees 2, b-block sees 1."""
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        long_arm = dag.access(dag.access(cursor, A), A)
        short_arm = dag.access(cursor, A)
        merged = dag.merge(long_arm, short_arm)
        merged = dag.access(merged, B)
        ends = dag.finalize(merged)
        assert dag.count(ends) == 2
        assert dag.count(ends, stuttering=True) == 1

    def test_secret_label_never_stutters(self):
        """Two consecutive accesses with the same two-element label count
        2×2 (independent secret choices), not 2."""
        dag = TraceDAG()
        cursor = dag.root_cursor()
        secret = label("X", "Y")
        cursor = dag.access(cursor, secret)
        cursor = dag.access(cursor, secret)
        ends = dag.finalize(cursor)
        assert dag.count(ends) == 4


class TestForkJoin:
    def test_diamond_sums_paths(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        left = dag.access(cursor, B)
        right = dag.access(cursor, C)
        merged = dag.merge(left, right)
        merged = dag.access(merged, D)
        ends = dag.finalize(merged)
        assert dag.count(ends) == 2

    def test_identical_arms_collapse(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        left = dag.access(cursor, B)
        right = dag.access(cursor, B)
        merged = dag.merge(left, right)
        merged = dag.access(merged, C)
        ends = dag.finalize(merged)
        assert dag.count(ends) == 1

    def test_nested_diamonds_multiply(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        for _round in range(3):
            left = dag.access(cursor, A)
            right = dag.access(cursor, B)
            cursor = dag.merge(left, right)
            cursor = dag.access(cursor, C)
        ends = dag.finalize(cursor)
        assert dag.count(ends) == 8  # 2^3: one bit per secret branch

    def test_merge_same_label_different_runs(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        longer = dag.access(cursor, A)
        merged = dag.merge(cursor, longer)
        merged = dag.access(merged, B)
        ends = dag.finalize(merged)
        assert dag.count(ends) == 2
        assert dag.count(ends, stuttering=True) == 1


class TestStructuralSharing:
    def test_identical_commits_share_vertices(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        first = dag.access(cursor, B)
        second = dag.access(cursor, B)
        assert first == second  # cursors coincide: same virtual entry
        dag.finalize(dag.merge(first, second))
        assert dag.size == 3  # root + A + B

    def test_access_counter(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        cursor = dag.access(cursor, B)
        assert dag.accesses_recorded == 2

    def test_to_dot_renders(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        cursor = dag.access(cursor, B)
        dag.finalize(cursor)
        dot = dag.to_dot()
        assert "digraph" in dot
        assert "->" in dot

    def test_vertices_introspection(self):
        dag = TraceDAG()
        cursor = dag.root_cursor()
        cursor = dag.access(cursor, A)
        cursor = dag.access(cursor, B)
        dag.finalize(cursor)
        labels = {v.label for v in dag.vertices()}
        assert labels == {A, B}
        assert len(dag.stutter_vertices()) == 2


class TestCountingScale:
    def test_huge_counts_supported(self):
        """Scatter/gather-style: 384 accesses with 8 observations each."""
        dag = TraceDAG()
        cursor = dag.root_cursor()
        for i in range(384):
            cursor = dag.access(cursor, label(*[f"{i}:{k}" for k in range(8)]))
        ends = dag.finalize(cursor)
        assert dag.count(ends) == 8 ** 384
