"""PrecisionLoss edge cases: joins at exactly the cap, shifts past it, and
the engine's fuel-exhaustion diagnostics."""

import pytest

from repro.analysis.analyzer import analyze
from repro.analysis.config import AnalysisConfig, AnalysisError, InputSpec
from repro.core.masked import MaskedOps
from repro.core.symbols import SymbolTable
from repro.core.valueset import PrecisionLoss, ValueSet, ValueSetOps
from repro.isa import parse_asm
from repro.isa.registers import EAX

WIDTH = 32


def make_ops(cap: int) -> ValueSetOps:
    table = SymbolTable(width=WIDTH)
    return ValueSetOps(MaskedOps(table), cap=cap)


class TestJoinAtCap:
    def test_join_exactly_at_cap_succeeds(self):
        cap = 8
        left = ValueSet.constants(range(4), WIDTH)
        right = ValueSet.constants(range(4, 8), WIDTH)
        joined = left.join(right, cap=cap)
        assert len(joined) == cap  # exactly the cap: allowed, not exceeded

    def test_join_one_past_cap_raises(self):
        cap = 8
        left = ValueSet.constants(range(5), WIDTH)
        right = ValueSet.constants(range(5, 9), WIDTH)
        with pytest.raises(PrecisionLoss, match=r"cap 8.*9 elements"):
            left.join(right, cap=cap)

    def test_join_overlap_does_not_overcount(self):
        cap = 4
        left = ValueSet.constants({1, 2, 3}, WIDTH)
        right = ValueSet.constants({2, 3, 4}, WIDTH)
        assert len(left.join(right, cap=cap)) == 4


class TestShiftPastCap:
    def test_shift_result_exceeding_cap_raises(self):
        cap = 4
        ops = make_ops(cap)
        values = ValueSet.constants(range(cap), WIDTH)      # at the cap
        counts = ValueSet.constants({1, 16}, WIDTH)          # disjoint images
        with pytest.raises(PrecisionLoss, match=rf"cap {cap}"):
            ops.shift("SHL", values, counts)

    def test_shift_at_cap_succeeds(self):
        cap = 4
        ops = make_ops(cap)
        values = ValueSet.constants(range(cap), WIDTH)
        result, _flags = ops.shift("SHL", values, ValueSet.constant(1, WIDTH))
        assert len(result) == cap

    def test_shift_by_symbol_rejected(self):
        ops = make_ops(8)
        table = ops.masked.table
        symbolic = ValueSet.symbol(table.input_symbol("count"), WIDTH)
        with pytest.raises(ValueError):
            ops.shift("SHR", ValueSet.constant(8, WIDTH), symbolic)


class TestFuelExhaustion:
    LOOP = """
    .text
    spin:
        jmp spin
    """

    def test_diverging_loop_reports_fuel_and_steps(self):
        image = parse_asm(self.LOOP).assemble()
        spec = InputSpec(entry="spin",
                         registers=(InputSpec.reg_constant(EAX, 0),))
        config = AnalysisConfig(fuel=25)
        with pytest.raises(AnalysisError) as outcome:
            analyze(image, spec, config)
        message = str(outcome.value)
        assert "fuel exhausted after 25 abstract steps" in message
        assert "diverging loop or bound too small" in message
