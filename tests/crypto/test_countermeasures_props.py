"""Property-based differential tests for the reference countermeasures.

These pin the golden references the transform passes are checked against:
``gather`` must invert ``scatter`` for every key and spacing, and the
branch-free ``defensive_gather`` must agree with ``gather`` everywhere —
the two OpenSSL retrieval variants differ only in their access patterns,
never in their results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.countermeasures import (
    align,
    defensive_gather,
    gather,
    scatter,
    secure_retrieve,
)

spacings = st.sampled_from([2, 4, 8, 16])


@st.composite
def scattered_tables(draw):
    """A spacing, an entry payload, and a buffer large enough to scatter."""
    spacing = draw(spacings)
    value = draw(st.binary(min_size=1, max_size=48))
    buffer = bytearray(draw(st.binary(
        min_size=len(value) * spacing, max_size=len(value) * spacing + 32)))
    return spacing, value, buffer


@settings(max_examples=80, deadline=None)
@given(data=scattered_tables())
def test_gather_inverts_scatter_for_all_keys(data):
    spacing, value, buffer = data
    for key in range(spacing):
        working = bytearray(buffer)
        scatter(working, value, key, spacing)
        assert gather(working, key, len(value), spacing) == value


@settings(max_examples=80, deadline=None)
@given(spacing=spacings, nbytes=st.integers(min_value=1, max_value=48),
       payload=st.binary(min_size=0, max_size=16))
def test_defensive_gather_agrees_with_gather_for_all_keys(
        spacing, nbytes, payload):
    buffer = bytearray((payload * (nbytes * spacing)
                        )[:nbytes * spacing].ljust(nbytes * spacing, b"\x5a"))
    for key in range(spacing):
        assert defensive_gather(buffer, key, nbytes, spacing) == \
            gather(buffer, key, nbytes, spacing)


@settings(max_examples=60, deadline=None)
@given(entries=st.lists(st.binary(min_size=8, max_size=8),
                        min_size=1, max_size=8))
def test_secure_retrieve_selects_the_keyed_entry(entries):
    for key in range(len(entries)):
        assert secure_retrieve(entries, key) == entries[key]


@settings(max_examples=60, deadline=None)
@given(buf=st.integers(min_value=0, max_value=0xFFFF_FF00),
       block=st.sampled_from([16, 32, 64, 128]))
def test_align_lands_strictly_inside_on_a_boundary(buf, block):
    aligned = align(buf, block)
    assert aligned % block == 0
    assert buf < aligned <= buf + block
