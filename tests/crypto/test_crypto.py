"""Crypto substrate tests: MPI arithmetic, modexp variants, ElGamal,
countermeasure references, and their agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.countermeasures import (
    align, defensive_gather, gather, scatter, secure_retrieve,
)
from repro.crypto.elgamal import SMALL_PRIMES, decrypt, encrypt, generate_key
from repro.crypto.modexp import MODEXP_VARIANTS, modexp
from repro.crypto.mpi import MPI, OpCounter

BIG = st.integers(min_value=0, max_value=1 << 256)


class TestMPI:
    def test_roundtrip(self):
        value = 0x1234567890ABCDEF1234
        assert MPI.from_int(value).to_int() == value

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MPI.from_int(-1)

    def test_bytes_roundtrip(self):
        mpi = MPI.from_int(0xAABBCCDDEE)
        assert MPI.from_bytes(mpi.to_bytes()).to_int() == mpi.to_int()

    def test_to_bytes_padding(self):
        raw = MPI.from_int(1).to_bytes(16)
        assert len(raw) == 16
        assert raw[0] == 1

    def test_bit_access(self):
        mpi = MPI.from_int(0b1010 << 32)
        assert mpi.bit(33) == 1
        assert mpi.bit(32) == 0
        assert mpi.bit(100) == 0

    @given(BIG, BIG)
    @settings(max_examples=50, deadline=None)
    def test_add_sub(self, a, b):
        big, small = max(a, b), min(a, b)
        assert MPI.from_int(a).add(MPI.from_int(b)).to_int() == a + b
        assert MPI.from_int(big).sub(MPI.from_int(small)).to_int() == big - small

    def test_sub_underflow(self):
        with pytest.raises(ValueError):
            MPI.from_int(1).sub(MPI.from_int(2))

    @given(BIG, BIG)
    @settings(max_examples=50, deadline=None)
    def test_mul(self, a, b):
        assert MPI.from_int(a).mul(MPI.from_int(b)).to_int() == a * b

    @given(BIG, st.integers(min_value=1, max_value=1 << 128))
    @settings(max_examples=50, deadline=None)
    def test_mod(self, a, m):
        assert MPI.from_int(a).mod(MPI.from_int(m)).to_int() == a % m

    def test_mod_zero(self):
        with pytest.raises(ZeroDivisionError):
            MPI.from_int(5).mod(MPI.from_int(0))

    def test_counter_counts_limb_muls(self):
        counter = OpCounter()
        a = MPI.from_int((1 << 128) - 1)  # 4 limbs
        a.mul(a, counter)
        assert counter.limb_mul == 16

    @given(BIG, BIG)
    @settings(max_examples=30, deadline=None)
    def test_compare(self, a, b):
        result = MPI.from_int(a).compare(MPI.from_int(b))
        assert result == (0 if a == b else (-1 if a < b else 1))


class TestModexpVariants:
    @pytest.mark.parametrize("variant", sorted(MODEXP_VARIANTS))
    def test_agrees_with_pow(self, variant):
        p = SMALL_PRIMES[64]
        for base, exponent in [(2, 3), (0x1234, 0xFEDCBA), (3, p - 2)]:
            result, _stats = modexp(variant, base, exponent, p)
            assert result == pow(base, exponent, p), variant

    def test_always_multiply_does_more_work(self):
        p = SMALL_PRIMES[64]
        _, sqm = modexp("sqm_152", 7, 0xDEADBEEFCAFE, p)
        _, sqam = modexp("sqam_153", 7, 0xDEADBEEFCAFE, p)
        assert sqam.multiplications > sqm.multiplications
        assert sqam.counter.total > sqm.counter.total

    def test_window_variants_fewer_multiplications(self):
        p = SMALL_PRIMES[128]
        exponent = (1 << 127) - 1  # worst case for square-and-multiply
        _, sqm = modexp("sqm_152", 5, exponent, p)
        _, win = modexp("window_161", 5, exponent, p)
        assert win.multiplications < sqm.multiplications

    def test_lookup_bytes_ordering(self):
        """The retrieval work orders like Figure 16b: scatter/gather <
        access-all-bytes ≤ defensive gather."""
        p = SMALL_PRIMES[128]
        _, sg = modexp("scatter_102f", 5, 0xABCDEF, p)
        _, sec = modexp("secure_163", 5, 0xABCDEF, p)
        _, dg = modexp("defensive_102g", 5, 0xABCDEF, p)
        assert sg.lookup_bytes < sec.lookup_bytes
        assert sg.lookup_bytes < dg.lookup_bytes

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            modexp("bogus", 1, 1, 3)


class TestElGamal:
    @pytest.mark.parametrize("variant", sorted(MODEXP_VARIANTS))
    def test_roundtrip(self, variant):
        key = generate_key(bits=64, seed=7)
        message = 0x123456789
        ciphertext = encrypt(key, message, seed=9)
        decrypted, stats = decrypt(key, ciphertext, variant=variant)
        assert decrypted == message
        assert stats.squarings > 0

    def test_message_range_checked(self):
        key = generate_key(bits=64)
        with pytest.raises(ValueError):
            encrypt(key, 0)

    def test_unknown_bits(self):
        with pytest.raises(ValueError):
            generate_key(bits=100)

    def test_unknown_variant(self):
        key = generate_key(bits=64)
        with pytest.raises(ValueError):
            decrypt(key, encrypt(key, 5), variant="nope")


class TestCountermeasureReferences:
    def test_align(self):
        assert align(0x9000123) % 64 == 0
        assert align(0x9000123) > 0x9000123
        assert align(0x9000000) == 0x9000040

    def test_scatter_gather_roundtrip(self):
        entries = [bytes([(k * 37 + i) & 0xFF for i in range(48)]) for k in range(8)]
        buffer = bytearray(48 * 8)
        for key, entry in enumerate(entries):
            scatter(buffer, entry, key, spacing=8)
        for key, entry in enumerate(entries):
            assert gather(buffer, key, 48, spacing=8) == entry

    def test_scatter_interleaves_blockwise(self):
        """Figure 2: byte i of every entry lives in the same 8-byte group."""
        buffer = bytearray(8 * 4)
        for key in range(8):
            scatter(buffer, bytes([key + 1] * 4), key, spacing=8)
        for group in range(4):
            assert set(buffer[group * 8:(group + 1) * 8]) == set(range(1, 9))

    def test_secure_retrieve_selects(self):
        entries = [bytes([k] * 8) for k in range(7)]
        for key in range(7):
            assert secure_retrieve(entries, key) == entries[key]

    def test_defensive_gather_matches_gather(self):
        entries = [bytes([(k * 11 + i) & 0xFF for i in range(16)]) for k in range(8)]
        buffer = bytearray(16 * 8)
        for key, entry in enumerate(entries):
            scatter(buffer, entry, key, spacing=8)
        for key in range(8):
            assert defensive_gather(buffer, key, 16, 8) == gather(buffer, key, 16, 8)
