"""The AES reference model and the compiled T-table kernel.

Three layers of oracle checks anchor the AES case study:

1. the pure-Python model is pinned to FIPS-197 (S-box values, Appendix B
   key expansion, both published encryption vectors);
2. the generated T-tables satisfy their algebraic relations (byte
   rotations of Te0, replicated S-box in Te4);
3. the compiled mini-C kernel, executed on the concrete VM, agrees with
   the model's ``t_round`` for every sampled key — so the analyzed binary
   provably computes AES, not something AES-shaped.
"""

from itertools import product

import pytest

from repro.crypto import aes
from repro.crypto.sources import aes_t_round_source
from repro.isa.registers import EAX
from repro.lang.driver import compile_program
from repro.vm.cpu import CPU
from repro.vm.memory import FlatMemory


class TestSbox:
    def test_fips_values(self):
        # FIPS-197 Figure 7 spot checks, including both fixed points of
        # the affine constant.
        assert aes.SBOX[0x00] == 0x63
        assert aes.SBOX[0x01] == 0x7C
        assert aes.SBOX[0x53] == 0xED
        assert aes.SBOX[0xCA] == 0x74
        assert aes.SBOX[0xFF] == 0x16

    def test_is_a_permutation(self):
        assert sorted(aes.SBOX) == list(range(256))


class TestTeTables:
    def test_rotation_structure(self):
        te0, te1, te2, te3, te4 = aes.te_tables()
        for x in (0, 1, 0x53, 0xAA, 0xFF):
            word = te0[x]
            rotr = lambda w, n: ((w >> n) | (w << (32 - n))) & 0xFFFFFFFF  # noqa: E731
            assert te1[x] == rotr(word, 8)
            assert te2[x] == rotr(word, 16)
            assert te3[x] == rotr(word, 24)
            assert te4[x] == aes.SBOX[x] * 0x01010101

    def test_te0_packs_mixcolumns(self):
        te0 = aes.te_tables()[0]
        s = aes.SBOX[0x53]
        s2 = aes.xtime(s)
        assert te0[0x53] == (s2 << 24) | (s << 16) | (s << 8) | (s2 ^ s)


class TestEncryptBlock:
    def test_fips_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert aes.encrypt_block(plaintext, key).hex() == \
            "3925841d02dc09fbdc118597196a0b32"

    def test_fips_appendix_c(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert aes.encrypt_block(plaintext, key).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_key_expansion_appendix_a(self):
        words = aes.expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        assert words[4] == 0xA0FAFE17  # the case study's AES_ROUND_KEY
        assert words[43] == 0xB6630CA6

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="16 bytes"):
            aes.expand_key(b"short")
        with pytest.raises(ValueError, match="16 bytes"):
            aes.encrypt_block(b"short", bytes(16))


class TestKernelMatchesModel:
    """The compiled kernel on the VM == the Python reference, word for word."""

    ENTRIES = 16
    PLAINTEXT = (0x32, 0x43, 0xF6, 0xA8)
    ROUND_KEY = 0xA0FAFE17

    def _run_kernel(self, entry: str, keys: tuple[int, ...]):
        image = compile_program(aes_t_round_source(self.ENTRIES),
                                opt_level=2, function_align=64,
                                data_align={"aes_te0": 64})
        out = 0x0900_0000
        memory = FlatMemory()
        cpu = CPU(image, memory=memory)
        for arg in reversed([out, *self.PLAINTEXT, *keys, self.ROUND_KEY]):
            cpu.push(arg)
        cpu.run(entry)
        return (cpu.get_reg(EAX), memory.read(out, 4), memory.read(out + 4, 4))

    @pytest.mark.parametrize("keys", list(product((2, 9), repeat=4)))
    def test_t_round_agrees(self, keys):
        returned, column, last = self._run_kernel("aes_t_round", keys)
        want_column, want_last = aes.t_round(
            self.PLAINTEXT, keys, self.ROUND_KEY, entries=self.ENTRIES)
        assert returned == want_column
        assert column == want_column
        assert last == want_last

    def test_warm_wrapper_preserves_the_round(self):
        keys = (2, 9, 5, 14)
        want_column, want_last = aes.t_round(
            self.PLAINTEXT, keys, self.ROUND_KEY, entries=self.ENTRIES)
        returned, column, last = self._run_kernel("aes_t_round_warm", keys)
        assert (returned, column, last) == (want_column, want_column, want_last)

    def test_source_rejects_bad_entry_counts(self):
        with pytest.raises(ValueError, match="power-of-two"):
            aes_t_round_source(24)
        with pytest.raises(ValueError, match=">= 16"):
            aes_t_round_source(8)
